"""The serve chaos harness: kill the server at durability seams.

The full sweep (every reachable crashpoint x 2 hits) is what ``repro
chaos --serve`` runs; here a restricted sweep over the three highest
value seams keeps the chaos-marked suite fast while still covering the
acceptance property end to end: after a kill -9 inside acceptance,
completion, or recovery itself, a restarted server loses no accepted
job, runs none twice, and stores byte-identical verdicts.
"""

import subprocess
import sys

import pytest

from repro.resilience.chaos import ENV_SCOPE, ENV_SPECS
from repro.serve.chaos import _ledger_done_counts, default_battery, serve_chaos_sweep
from repro.serve.client import ServerGone

from tests.serve.test_server import _client, _env, _probe, _stop

pytestmark = pytest.mark.chaos

#: One point per durability seam class: post-acceptance (job durable,
#: not yet queued visibly), the store->ledger completion gap, and the
#: recovery repair path itself (exercised via a staged first kill).
POINTS = ["serve.accept.post", "serve.complete.gap", "serve.recover.done"]


def test_restricted_sweep_recovers_everywhere(tmp_path):
    sweep = serve_chaos_sweep(
        battery=default_battery(jobs=3),
        workdir=str(tmp_path),
        max_hits_per_point=1,
        points=POINTS,
        timeout=120.0,
    )
    assert sweep.results, "no armed cycles ran"
    covered = {result.point for result in sweep.results}
    assert covered == set(POINTS), covered
    failures = [r for r in sweep.results if not r.ok]
    assert not failures, "\n".join(
        f"{r.point}:{r.hit}:{r.mode}: {r.detail}" for r in failures
    )
    assert sweep.ok, sweep.describe()


def test_default_battery_shape():
    battery = default_battery(jobs=4)
    assert len(battery) == 4
    assert battery[0]["kind"] == "refute"
    assert all(job["kind"] == "probe" for job in battery[1:])


def test_rejects_non_death_modes(tmp_path):
    with pytest.raises(ValueError, match="kill/exit"):
        serve_chaos_sweep(
            battery=default_battery(jobs=1),
            workdir=str(tmp_path),
            modes=("stall",),
        )


def _start_armed(tmp_path, spec, *extra):
    """A server subprocess with a crashpoint spec armed in its env."""
    env = _env()
    env[ENV_SPECS] = spec
    env[ENV_SCOPE] = "main"
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--dir", str(tmp_path),
        "--port", "0",
        "--concurrency", "1",
        "--no-isolation",
        *extra,
    ]
    return subprocess.Popen(
        argv, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, env=env
    )


class TestCompactionSeamKills:
    """kill -9 inside store GC must never cost a verdict or a ledger
    completion: the atomic-rename compaction leaves old bytes or new
    bytes, and a restarted server answers everything from the store."""

    def _kill_cycle_then_recover(self, tmp_path, point):
        proc = _start_armed(
            tmp_path, f"{point}:1:kill", "--store-retain", "1"
        )
        digests = {}
        try:
            client = _client(tmp_path, proc)
            first = client.submit(_probe(50, "seam-a"), wait=True)
            assert first["status"] == "done"
            digests[first["id"]] = first["result"]["digest"]
            # The second stored verdict pushes the store past retain=1;
            # GC runs, hits the armed crashpoint, and the process dies
            # mid-completion.
            with pytest.raises(ServerGone):
                client.submit(_probe(51, "seam-b"), wait=True)
            proc.wait(timeout=30)
            assert proc.returncode in (-9, 137), proc.returncode
        finally:
            _stop(proc)

        proc = _start_armed(tmp_path, "", "--store-retain", "1")
        try:
            client = _client(tmp_path, proc)
            for job in (_probe(50, "seam-a"), _probe(51, "seam-b")):
                done = client.submit(job, wait=True)
                assert done["status"] == "done", done
                expected = digests.get(done["id"])
                if expected is not None:
                    assert done["result"]["digest"] == expected
        finally:
            _stop(proc)
        counts = _ledger_done_counts(str(tmp_path))
        assert all(count <= 1 for count in counts.values()), counts

    def test_kill_before_compaction(self, tmp_path):
        self._kill_cycle_then_recover(tmp_path, "serve.store.compact.pre")

    def test_kill_before_rename(self, tmp_path):
        self._kill_cycle_then_recover(
            tmp_path, "serve.store.compact.rename.pre"
        )

    def test_kill_after_rename(self, tmp_path):
        self._kill_cycle_then_recover(
            tmp_path, "serve.store.compact.post"
        )
