"""The serve chaos harness: kill the server at durability seams.

The full sweep (every reachable crashpoint x 2 hits) is what ``repro
chaos --serve`` runs; here a restricted sweep over the three highest
value seams keeps the chaos-marked suite fast while still covering the
acceptance property end to end: after a kill -9 inside acceptance,
completion, or recovery itself, a restarted server loses no accepted
job, runs none twice, and stores byte-identical verdicts.
"""

import pytest

from repro.serve.chaos import default_battery, serve_chaos_sweep

pytestmark = pytest.mark.chaos

#: One point per durability seam class: post-acceptance (job durable,
#: not yet queued visibly), the store->ledger completion gap, and the
#: recovery repair path itself (exercised via a staged first kill).
POINTS = ["serve.accept.post", "serve.complete.gap", "serve.recover.done"]


def test_restricted_sweep_recovers_everywhere(tmp_path):
    sweep = serve_chaos_sweep(
        battery=default_battery(jobs=3),
        workdir=str(tmp_path),
        max_hits_per_point=1,
        points=POINTS,
        timeout=120.0,
    )
    assert sweep.results, "no armed cycles ran"
    covered = {result.point for result in sweep.results}
    assert covered == set(POINTS), covered
    failures = [r for r in sweep.results if not r.ok]
    assert not failures, "\n".join(
        f"{r.point}:{r.hit}:{r.mode}: {r.detail}" for r in failures
    )
    assert sweep.ok, sweep.describe()


def test_default_battery_shape():
    battery = default_battery(jobs=4)
    assert len(battery) == 4
    assert battery[0]["kind"] == "refute"
    assert all(job["kind"] == "probe" for job in battery[1:])


def test_rejects_non_death_modes(tmp_path):
    with pytest.raises(ValueError, match="kill/exit"):
        serve_chaos_sweep(
            battery=default_battery(jobs=1),
            workdir=str(tmp_path),
            modes=("stall",),
        )
