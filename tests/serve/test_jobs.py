"""Job specs: validation, canonical form, fingerprints, execution."""

import pytest

from repro.serve.jobs import InvalidJob, JobSpec, run_job


class TestValidation:
    def test_defaults_are_a_valid_refute(self):
        spec = JobSpec.from_dict({})
        assert spec.kind == "refute"
        assert spec.protocol == "quorum"
        assert spec.model == "s1-mobile"
        assert spec.n == 3

    def test_not_a_dict(self):
        with pytest.raises(InvalidJob, match="must be an object"):
            JobSpec.from_dict(["kind", "probe"])

    def test_unknown_kind(self):
        with pytest.raises(InvalidJob, match="unknown job kind"):
            JobSpec.from_dict({"kind": "mine-bitcoin"})

    def test_foreign_fields_rejected(self):
        with pytest.raises(InvalidJob, match="do not apply"):
            JobSpec.from_dict({"kind": "probe", "protocol": "quorum"})
        with pytest.raises(InvalidJob, match="do not apply"):
            JobSpec.from_dict({"kind": "refute", "work": 5})

    def test_unknown_protocol(self):
        with pytest.raises(InvalidJob, match="unknown protocol"):
            JobSpec.from_dict({"protocol": "paxos"})

    def test_n_bounds(self):
        with pytest.raises(InvalidJob, match="n must be"):
            JobSpec.from_dict({"n": 1})
        with pytest.raises(InvalidJob, match="n must be"):
            JobSpec.from_dict({"n": 99})
        with pytest.raises(InvalidJob, match="n must be"):
            JobSpec.from_dict({"n": "3"})

    def test_unknown_model_lists_choices(self):
        with pytest.raises(InvalidJob, match="no layering"):
            JobSpec.from_dict({"model": "quantum"})

    def test_bad_max_states(self):
        with pytest.raises(InvalidJob, match="max_states"):
            JobSpec.from_dict({"max_states": 0})

    def test_probe_bounds(self):
        with pytest.raises(InvalidJob, match="probe work"):
            JobSpec.from_dict({"kind": "probe", "work": 0})
        with pytest.raises(InvalidJob, match="probe value"):
            JobSpec.from_dict({"kind": "probe", "value": "x" * 1000})


class TestFingerprint:
    def test_defaults_and_explicit_form_agree(self):
        implicit = JobSpec.from_dict({})
        explicit = JobSpec.from_dict(
            {"kind": "refute", "protocol": "quorum",
             "model": "s1-mobile", "n": 3}
        )
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_fingerprint_is_stable(self):
        spec = JobSpec.from_dict({"kind": "probe", "work": 7, "value": "v"})
        assert spec.fingerprint() == spec.fingerprint()

    def test_distinct_jobs_distinct_fingerprints(self):
        a = JobSpec.from_dict({"kind": "probe", "work": 7})
        b = JobSpec.from_dict({"kind": "probe", "work": 8})
        c = JobSpec.from_dict({})
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_canonical_omits_unset_max_states(self):
        assert "max_states" not in JobSpec.from_dict({}).canonical()
        assert (
            JobSpec.from_dict({"max_states": 10}).canonical()["max_states"]
            == 10
        )


class TestRunJob:
    def test_probe_is_deterministic(self):
        payload = {"job": {"kind": "probe", "work": 25, "value": "seed"}}
        first = run_job(payload)
        second = run_job(payload)
        assert first == second
        assert first["conclusive"] is True
        assert first["cost"] == 25
        assert first["record"]["verdict"] == "probe"

    def test_refute_finds_quorum_counterexample(self):
        payload = {"job": {"protocol": "quorum", "model": "s1-mobile",
                           "n": 3}}
        result = run_job(payload)
        assert result["conclusive"] is True
        assert result["record"]["verdict"] == "agreement-violation"
        assert result["record"]["states_explored"] > 0

    def test_refute_respects_budget(self):
        payload = {
            "job": {"protocol": "quorum", "model": "s1-mobile", "n": 3},
            "budget": {"max_states": 1},
        }
        result = run_job(payload)
        assert result["conclusive"] is False
        assert result["limit"] == "states"
