"""Admission control: shed conditions, quotas, counters."""

import pytest

from repro.resilience.budget import Budget
from repro.serve.admission import (
    AdmissionController,
    REJECT_DRAINING,
    REJECT_QUEUE_FULL,
    REJECT_QUOTA,
)


class TestDecide:
    def test_accepts_under_the_bound(self):
        ctl = AdmissionController(queue_limit=2)
        assert ctl.decide("t", depth=0).accepted
        assert ctl.decide("t", depth=1).accepted
        assert ctl.accepted == 2

    def test_sheds_at_the_bound(self):
        ctl = AdmissionController(queue_limit=2)
        decision = ctl.decide("t", depth=2)
        assert not decision.accepted
        assert decision.reason == REJECT_QUEUE_FULL

    def test_draining_sheds_everything(self):
        ctl = AdmissionController(queue_limit=100)
        ctl.draining = True
        decision = ctl.decide("t", depth=0)
        assert not decision.accepted
        assert decision.reason == REJECT_DRAINING

    def test_queue_limit_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=0)


class TestQuotas:
    def test_tenant_shed_after_quota_trips(self):
        ctl = AdmissionController(
            queue_limit=100, tenant_budget=Budget(max_states=10)
        )
        assert ctl.decide("alice", depth=0).accepted
        ctl.charge("alice", 11)
        decision = ctl.decide("alice", depth=0)
        assert not decision.accepted
        assert decision.reason == REJECT_QUOTA
        assert "alice" in decision.detail

    def test_quotas_are_per_tenant(self):
        ctl = AdmissionController(
            queue_limit=100, tenant_budget=Budget(max_states=10)
        )
        ctl.charge("alice", 11)
        assert not ctl.decide("alice", depth=0).accepted
        assert ctl.decide("bob", depth=0).accepted

    def test_no_budget_means_no_quota(self):
        ctl = AdmissionController(queue_limit=100)
        ctl.charge("alice", 10**9)
        assert ctl.decide("alice", depth=0).accepted


class TestStats:
    def test_counters_and_tenants(self):
        ctl = AdmissionController(
            queue_limit=1, tenant_budget=Budget(max_states=5)
        )
        ctl.decide("t", depth=0)
        ctl.decide("t", depth=1)
        ctl.reject_invalid("nope")
        ctl.charge("t", 3)
        stats = ctl.stats()
        assert stats["accepted"] == 1
        assert stats["rejected"] == {"invalid-job": 1, "queue-full": 1}
        assert stats["tenants"]["t"]["states"] == 3
        assert stats["tenants"]["t"]["exhausted"] is None
