"""The fault-injecting proxy, unit-tested against an in-process echo peer.

The proxy is the adversary every other PR 9 test leans on, so its own
behaviour is pinned first: each fault kind produces exactly the failure
signature the client layer is written to survive (EOF, RST, torn frame,
dribble, refused window), phases are detected where the protocol says
they are, and the schedule is a pure function of (seed, index).

The ``@slow`` smoke runs one restricted `repro chaos --net` cell end to
end; the full 18-cell matrix lives behind the ``chaos`` marker like the
other exhaustive sweeps.
"""

import socket
import threading
import time

import pytest

from repro.serve.client import ProtocolError, ServerGone, recv_line
from repro.serve.netchaos import (
    FAULT_KINDS,
    PHASES,
    FaultSchedule,
    NetChaosProxy,
    NetFault,
    default_matrix,
    netchaos_sweep,
)


# ---------------------------------------------------------------------------
# An in-process line-echo peer standing in for the real server.
# ---------------------------------------------------------------------------


class EchoPeer:
    """Line-echo TCP server; ``burst`` extra lines follow each echo.

    The extra lines (sent after a short pause) are what lets a test
    reach the proxy's ``stream`` phase: the first echoed line completes
    downstream, so the *next* downstream bytes are stream-phase bytes.
    """

    def __init__(self, burst: int = 0, burst_delay: float = 0.05) -> None:
        self.burst = burst
        self.burst_delay = burst_delay
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.endpoint = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(10.0)
        buffer = bytearray()
        try:
            while True:
                line = recv_line(conn, buffer)
                if not line:
                    return
                conn.sendall(b"echo:" + line)
                for index in range(self.burst):
                    time.sleep(self.burst_delay)
                    conn.sendall(f"burst:{index}\n".encode())
        except (ServerGone, OSError):
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "EchoPeer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _exchange(endpoint, payload=b"ping\n", timeout=5.0):
    """One request/response exchange, with ServeClient's EOF contract:
    a clean close before the response line is still ServerGone."""
    with socket.create_connection(endpoint, timeout=timeout) as sock:
        sock.sendall(payload)
        line = recv_line(sock, bytearray())
    if not line:
        raise ServerGone("connection closed mid-request")
    return line


# ---------------------------------------------------------------------------
# Schedule and matrix: pure functions, pinned.
# ---------------------------------------------------------------------------


class TestFaultSchedule:
    def test_unknown_kind_and_phase_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            NetFault("gremlin")
        with pytest.raises(ValueError, match="phase"):
            NetFault("drop", phase="teardown")

    def test_window_arms_a_contiguous_range(self):
        fault = NetFault("drop", "request")
        schedule = FaultSchedule.window(fault, first=2, count=3)
        assert [schedule.fault_for(i) for i in (1, 5)] == [None, None]
        assert all(schedule.fault_for(i) is fault for i in (2, 3, 4))

    def test_loss_profile_is_deterministic_and_calibrated(self):
        schedule = FaultSchedule(seed=42, loss=0.3)
        draws = [schedule.fault_for(i) for i in range(1, 2001)]
        replay = [FaultSchedule(seed=42, loss=0.3).fault_for(i)
                  for i in range(1, 2001)]
        assert draws == replay
        hits = [fault for fault in draws if fault is not None]
        assert 0.2 < len(hits) / len(draws) < 0.4
        assert {f.kind for f in hits} <= set(FaultSchedule._LOSS_KINDS)
        assert {f.phase for f in hits} <= set(FaultSchedule._LOSS_PHASES)

    def test_jitter_profile_emits_bounded_connect_latency(self):
        schedule = FaultSchedule(seed=1, jitter=0.05)
        for index in range(1, 50):
            fault = schedule.fault_for(index)
            assert fault is not None and fault.kind == "latency"
            assert fault.phase == "connect"
            assert 0.0 <= fault.arg < 0.05

    def test_seed_changes_the_draw(self):
        a = [FaultSchedule(seed=0, loss=0.3).fault_for(i) for i in range(1, 200)]
        b = [FaultSchedule(seed=1, loss=0.3).fault_for(i) for i in range(1, 200)]
        assert a != b

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(loss=1.0)
        with pytest.raises(ValueError):
            FaultSchedule(jitter=-0.1)


class TestDefaultMatrix:
    def test_full_matrix_covers_every_killing_fault_times_phase(self):
        cells = default_matrix()
        assert len(cells) == 18  # 4 killing kinds x 4 phases + latency + partition
        labels = {cell.describe() for cell in cells}
        for kind in ("drop", "reset", "truncate", "loris"):
            for phase in PHASES:
                assert f"{kind}@{phase}" in labels
        assert "latency@connect" in labels
        assert "partition@connect" in labels

    def test_restricted_matrix(self):
        cells = default_matrix(faults=["drop"], phases=["request"])
        assert [cell.describe() for cell in cells] == ["drop@request"]

    def test_unknown_selectors_rejected(self):
        with pytest.raises(ValueError):
            default_matrix(faults=["gremlin"])
        with pytest.raises(ValueError):
            default_matrix(phases=["teardown"])


# ---------------------------------------------------------------------------
# The proxy itself, one fault signature at a time.
# ---------------------------------------------------------------------------


class TestProxyFaults:
    def test_passthrough_forwards_both_ways(self):
        with EchoPeer() as peer:
            with NetChaosProxy(*peer.endpoint) as proxy:
                assert _exchange(proxy.endpoint) == b"echo:ping\n"
                assert proxy.connections == 1
                assert proxy.injected == {}

    def test_latency_at_connect_delays_then_succeeds(self):
        fault = NetFault("latency", "connect", arg=0.2)
        with EchoPeer() as peer:
            with NetChaosProxy(
                *peer.endpoint, schedule=FaultSchedule.window(fault)
            ) as proxy:
                start = time.monotonic()
                assert _exchange(proxy.endpoint) == b"echo:ping\n"
                assert time.monotonic() - start >= 0.2
                assert proxy.injected["latency@connect"] == 1

    def test_drop_at_request_is_eof_mid_exchange(self):
        fault = NetFault("drop", "request")
        with EchoPeer() as peer:
            with NetChaosProxy(
                *peer.endpoint, schedule=FaultSchedule.window(fault)
            ) as proxy:
                with pytest.raises(ServerGone):
                    _exchange(proxy.endpoint)
                assert proxy.injected["drop@request"] == 1

    def test_reset_at_response_is_a_hard_error(self):
        fault = NetFault("reset", "response")
        with EchoPeer() as peer:
            with NetChaosProxy(
                *peer.endpoint, schedule=FaultSchedule.window(fault)
            ) as proxy:
                with pytest.raises((ServerGone, ConnectionError, OSError)):
                    _exchange(proxy.endpoint)
                assert proxy.injected["reset@response"] == 1

    def test_truncate_at_response_is_a_torn_frame(self):
        fault = NetFault("truncate", "response")
        with EchoPeer() as peer:
            with NetChaosProxy(
                *peer.endpoint, schedule=FaultSchedule.window(fault)
            ) as proxy:
                with pytest.raises(ServerGone, match="torn frame"):
                    _exchange(
                        proxy.endpoint, payload=b"a-reasonably-long-line\n"
                    )
                assert proxy.injected["truncate@response"] == 1

    def test_loris_at_response_dribbles_then_dies(self):
        fault = NetFault("loris", "response")
        with EchoPeer() as peer:
            with NetChaosProxy(
                *peer.endpoint, schedule=FaultSchedule.window(fault)
            ) as proxy:
                start = time.monotonic()
                with pytest.raises(ServerGone, match="torn frame"):
                    _exchange(proxy.endpoint, payload=b"slow-loris-target\n")
                # Dribble pacing: LORIS_BYTES pauses of LORIS_DELAY each.
                assert time.monotonic() - start >= (
                    NetChaosProxy.LORIS_DELAY * NetChaosProxy.LORIS_BYTES
                )
                assert proxy.injected["loris@response"] == 1

    def test_stream_phase_fires_only_after_a_complete_line(self):
        """The echo line completes downstream; the burst line after it
        is stream-phase bytes — a stream-armed fault must spare the
        first response and kill the burst."""
        fault = NetFault("drop", "stream")
        with EchoPeer(burst=2, burst_delay=0.1) as peer:
            with NetChaosProxy(
                *peer.endpoint, schedule=FaultSchedule.window(fault)
            ) as proxy:
                with socket.create_connection(
                    proxy.endpoint, timeout=5.0
                ) as sock:
                    sock.sendall(b"ping\n")
                    buffer = bytearray()
                    assert recv_line(sock, buffer) == b"echo:ping\n"
                    with pytest.raises(ServerGone):
                        while True:
                            if not recv_line(sock, buffer):
                                raise ServerGone("eof")
                assert proxy.injected["drop@stream"] == 1

    def test_partition_refuses_then_heals(self):
        fault = NetFault("partition", "connect", arg=0.5)
        with EchoPeer() as peer:
            with NetChaosProxy(
                *peer.endpoint, schedule=FaultSchedule.window(fault, count=1)
            ) as proxy:
                # Trigger: the first connection is RST'd and starts the
                # partition window.
                with pytest.raises((ServerGone, ConnectionError, OSError)):
                    _exchange(proxy.endpoint, timeout=2.0)
                # Inside the window every connection is refused.
                with pytest.raises((ServerGone, ConnectionError, OSError)):
                    _exchange(proxy.endpoint, timeout=2.0)
                assert proxy.injected["partition.refused"] >= 1
                # After the heal the path works again.
                time.sleep(0.6)
                assert _exchange(proxy.endpoint) == b"echo:ping\n"
                assert proxy.injected["partition@connect"] == 1

    def test_fault_fires_once_per_window_entry(self):
        """Each armed connection trips its fault once; connections past
        the window pass clean."""
        fault = NetFault("drop", "request")
        with EchoPeer() as peer:
            with NetChaosProxy(
                *peer.endpoint, schedule=FaultSchedule.window(fault, count=2)
            ) as proxy:
                for _ in range(2):
                    with pytest.raises(ServerGone):
                        _exchange(proxy.endpoint)
                assert _exchange(proxy.endpoint) == b"echo:ping\n"
                assert proxy.injected["drop@request"] == 2
                assert proxy.connections == 3

    def test_proxy_stop_kills_live_connections(self):
        with EchoPeer() as peer:
            proxy = NetChaosProxy(*peer.endpoint).start()
            sock = socket.create_connection(proxy.endpoint, timeout=5.0)
            sock.settimeout(5.0)
            sock.sendall(b"ping\n")
            assert recv_line(sock, bytearray()) == b"echo:ping\n"
            proxy.stop()
            with pytest.raises((ServerGone, ProtocolError, OSError)):
                sock.sendall(b"again\n")
                if not recv_line(sock, bytearray()):
                    raise ServerGone("eof")
            sock.close()


# ---------------------------------------------------------------------------
# The sweep harness end to end, against a real server.
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestSweepSmoke:
    def test_one_cell_against_a_live_server(self, tmp_path):
        """Baseline + one drop@request cell: the full PR 6 contract —
        none lost, none twice, byte-identical stores, resubmission
        answered from dedupe — under an adversarial wire."""
        sweep = netchaos_sweep(
            battery=[
                {"kind": "probe", "work": 60, "value": "net-smoke-0"},
                {"kind": "probe", "work": 61, "value": "net-smoke-1"},
            ],
            workdir=str(tmp_path),
            faults=["drop"],
            phases=["request"],
            run_timeout=90.0,
        )
        assert sweep.error == ""
        assert sweep.baseline_jobs == 2
        assert len(sweep.results) == 1
        result = sweep.results[0]
        assert result.ok, sweep.describe()
        assert result.injected >= 1
        assert result.reconnects >= 1


@pytest.mark.chaos
class TestFullNetChaosMatrix:
    def test_every_fault_class_and_phase(self, tmp_path):
        """The acceptance sweep: all 18 cells of `repro chaos --net`."""
        sweep = netchaos_sweep(workdir=str(tmp_path), run_timeout=180.0)
        assert sweep.ok, sweep.describe()
        assert len(sweep.results) == 18
        killing = [r for r in sweep.results if r.fault != "latency"]
        assert all(r.injected >= 1 for r in killing), sweep.describe()
