"""The circuit breaker automaton, driven with injected time (no sleeps)."""

import pytest

from repro.serve.breaker import CLOSED, CircuitBreaker, HALF_OPEN, OPEN


class TestAutomaton:
    def test_closed_allows(self):
        breaker = CircuitBreaker(threshold=3, cooldown=30.0)
        assert breaker.state == CLOSED
        assert breaker.allow(now=0.0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=30.0)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == CLOSED
        breaker.record_failure(now=0.0)
        assert breaker.state == OPEN
        assert not breaker.allow(now=1.0)
        assert breaker.shed_total == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=30.0)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == OPEN
        assert not breaker.allow(now=5.0)
        assert breaker.allow(now=11.0)  # cooldown passed: the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(now=11.0)  # second job sheds

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=11.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow(now=11.0)

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=11.0)
        breaker.record_failure(now=11.0)
        assert breaker.state == OPEN
        assert not breaker.allow(now=20.0)  # 11 + 10 not yet passed
        assert breaker.allow(now=21.5)
        assert breaker.opened_total == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)

    def test_describe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure(now=0.0)
        breaker.allow(now=1.0)
        info = breaker.describe()
        assert info["state"] == OPEN
        assert info["opened_total"] == 1
        assert info["shed_total"] == 1
