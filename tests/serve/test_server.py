"""Live-server integration: a real ``repro serve`` subprocess driven
over its TCP protocol.

Covers the headline robustness properties end to end: dedupe against
the durable store, structured shedding under overload (never a crash),
tenant quotas, and SIGTERM graceful drain with ledger-driven resume in
a fresh process.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience.chaos import ENV_SCOPE, ENV_SPECS, ENV_TRACE
from repro.serve.client import ServeClient, wait_for_endpoint

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: ~0.1-0.5s of sha256 chaining: long enough to still be in flight when
#: a signal lands right after submission, far below any test timeout.
SLOW_WORK = 400_000


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for var in (ENV_SPECS, ENV_TRACE, ENV_SCOPE):
        env.pop(var, None)
    return env


def _start(tmp_path, *extra):
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--dir", str(tmp_path),
        "--port", "0",
        "--concurrency", "1",
        "--no-isolation",
        *extra,
    ]
    return subprocess.Popen(
        argv, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, env=_env()
    )


def _stop(proc, timeout=60):
    try:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=timeout)
    except BaseException:
        proc.kill()
        proc.wait()
        raise
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if proc.stderr is not None:
            proc.stderr.close()


def _client(tmp_path, proc, timeout=30.0):
    try:
        host, port = wait_for_endpoint(tmp_path, timeout=30.0)
    except BaseException:
        _stop(proc)
        raise
    return ServeClient(host, port, timeout=timeout)


def _probe(work, tag):
    return {"kind": "probe", "work": work, "value": tag}


@pytest.mark.slow
class TestServerRoundtrip:
    def test_submit_dedupe_and_stats(self, tmp_path):
        proc = _start(tmp_path)
        try:
            client = _client(tmp_path, proc)
            first = client.submit(_probe(50, "roundtrip"), wait=True)
            assert first["status"] == "done", first
            digest = first["result"]["digest"]

            again = client.submit(_probe(50, "roundtrip"), wait=True)
            assert again["status"] == "done"
            assert again.get("cached") is True
            assert again["result"]["digest"] == digest

            by_id = client.result(first["id"])
            assert by_id["status"] == "done"
            assert by_id["result"]["digest"] == digest

            stats = client.stats()
            assert stats["counters"]["stored"] == 1
            assert stats["counters"]["store_hits"] >= 1
            assert stats["store_records"] == 1
        finally:
            _stop(proc)

    def test_invalid_job_is_structured_rejection(self, tmp_path):
        proc = _start(tmp_path)
        try:
            client = _client(tmp_path, proc)
            response = client.submit({"kind": "probe", "work": -3})
            assert response["status"] == "rejected"
            assert response["reason"] == "invalid-job"
            assert client.ping()["status"] == "ok"
        finally:
            _stop(proc)

    def test_unknown_fingerprint(self, tmp_path):
        proc = _start(tmp_path)
        try:
            client = _client(tmp_path, proc)
            assert client.result("not-a-fp")["status"] == "unknown"
        finally:
            _stop(proc)


@pytest.mark.slow
class TestOverload:
    def test_overload_sheds_never_crashes(self, tmp_path):
        """10x the admission bound: every response is structured
        (accepted or REJECTED/queue-full) and the server stays alive."""
        bound = 2
        proc = _start(tmp_path, "--queue-limit", str(bound))
        try:
            client = _client(tmp_path, proc)
            responses = [
                client.submit(_probe(SLOW_WORK, f"overload-{i}"))
                for i in range(10 * bound)
            ]
            statuses = {r["status"] for r in responses}
            assert statuses <= {"accepted", "rejected"}, statuses
            rejected = [r for r in responses if r["status"] == "rejected"]
            assert rejected, "10x overload produced no shedding"
            assert {r["reason"] for r in rejected} == {"queue-full"}
            # Shedding is load-dependent, the bound is not: accepted
            # jobs never exceed the configured queue limit.
            accepted = [r for r in responses if r["status"] == "accepted"]
            assert len(accepted) <= bound
            assert client.ping()["status"] == "ok"
            assert client.stats()["counters"]["errors"] == 0
        finally:
            _stop(proc)

    def test_tenant_quota_exhaustion(self, tmp_path):
        proc = _start(tmp_path, "--tenant-max-states", "100")
        try:
            client = _client(tmp_path, proc)
            done = client.submit(_probe(200, "quota"), tenant="greedy",
                                 wait=True)
            assert done["status"] == "done"
            shed = client.submit(_probe(201, "quota"), tenant="greedy")
            assert shed["status"] == "rejected"
            assert shed["reason"] == "quota-exhausted"
            other = client.submit(_probe(202, "quota"), tenant="frugal",
                                  wait=True)
            assert other["status"] == "done"
        finally:
            _stop(proc)


@pytest.mark.slow
class TestGracefulDrainAndResume:
    def test_sigterm_drains_then_restart_resumes(self, tmp_path):
        jobs = [_probe(SLOW_WORK, f"drain-{i}") for i in range(4)]
        proc = _start(tmp_path, "--queue-limit", "8",
                      "--drain-grace", "0.05")
        fingerprints = []
        try:
            client = _client(tmp_path, proc)
            for job in jobs:
                response = client.submit(job)
                assert response["status"] == "accepted", response
                fingerprints.append(response["id"])
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
            assert proc.returncode == 130
        finally:
            _stop(proc)

        # A fresh process over the same directory must recover every
        # accepted-but-unfinished job from the ledger and finish it.
        proc = _start(tmp_path, "--queue-limit", "8")
        try:
            client = _client(tmp_path, proc)
            assert client.stats()["counters"]["recovered"] >= 1
            deadline = time.monotonic() + 60
            pending = set(fingerprints)
            while pending and time.monotonic() < deadline:
                for fp in sorted(pending):
                    response = client.result(fp)
                    if response["status"] == "done":
                        pending.discard(fp)
                time.sleep(0.05)
            assert not pending, f"jobs never completed: {sorted(pending)}"
            # Resubmitting any of them is now a pure store hit.
            cached = client.submit(jobs[0], wait=True)
            assert cached["status"] == "done"
            assert cached.get("cached") is True
            stats = client.stats()
            assert stats["store_records"] == len(jobs)
        finally:
            _stop(proc)


@pytest.mark.slow
class TestCompactionAndGC:
    def test_compact_op_evicts_then_resubmit_reruns_once(self, tmp_path):
        """Evicting a verdict is a cache eviction, not a correctness
        event: a resubmitted job re-runs to the same verdict, and the
        ledger still records its completion exactly once."""
        from repro.serve.chaos import _ledger_done_counts

        proc = _start(tmp_path)
        try:
            client = _client(tmp_path, proc)
            digests = {}
            for i in range(3):
                done = client.submit(_probe(50 + i, f"gc-{i}"), wait=True)
                assert done["status"] == "done"
                digests[done["id"]] = done["result"]["digest"]

            compacted = client.compact(retain=0)
            assert compacted["status"] == "ok"
            assert compacted["evicted"] == 3
            assert compacted["store_records"] == 0

            rerun = client.submit(_probe(50, "gc-0"), wait=True)
            assert rerun["status"] == "done"
            assert rerun["result"]["digest"] == digests[rerun["id"]]
            stats = client.stats()
            # Re-stored after the dedupe miss: 3 originals + 1 re-run.
            assert stats["counters"]["stored"] == 4
            assert stats["store_records"] == 1
        finally:
            _stop(proc)
        # The compact op also compacted the ledger into a base snapshot,
        # so raw unit records may be gone — but never duplicated — and
        # every completion must survive in the snapshot.
        done_counts = _ledger_done_counts(str(tmp_path))
        assert all(count == 1 for count in done_counts.values()), done_counts
        from repro.resilience.journal import CampaignJournal
        from repro.serve.chaos import LEDGER_NAME

        ledger = CampaignJournal.resume(str(tmp_path / LEDGER_NAME))
        try:
            completed = set(ledger.completed)
        finally:
            ledger.close()
        assert {f"done:{fp}" for fp in digests} <= completed

    def test_store_retain_runs_gc_automatically(self, tmp_path):
        proc = _start(tmp_path, "--store-retain", "2")
        try:
            client = _client(tmp_path, proc)
            for i in range(5):
                done = client.submit(_probe(50 + i, f"auto-{i}"), wait=True)
                assert done["status"] == "done"
            stats = client.stats()
            assert stats["store_records"] <= 2
            assert stats["counters"]["compactions"] >= 1
            assert stats["counters"]["gc_evicted"] >= 3
        finally:
            _stop(proc)

    def test_compact_rejects_bad_retain(self, tmp_path):
        proc = _start(tmp_path)
        try:
            client = _client(tmp_path, proc)
            for bad in (-1, True, "two"):
                response = client.request({"op": "compact", "retain": bad})
                assert response["status"] == "error", (bad, response)
            # And with no retain configured at all, compact is a no-op
            # rewrite, never an error.
            response = client.compact()
            assert response["status"] == "ok"
            assert response["evicted"] == 0
        finally:
            _stop(proc)
