"""Smoke tests: every example script runs and prints its headline."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart.py": [
        "agreement-violation",
        "satisfied",
        "The bound is exactly t+1",
    ],
    "flp_asynchronous.py": [
        "agreement-violation",
        "decision-violation",
        "validity-violation",
        "EQUAL global states",
    ],
    "mobile_failures.py": [
        "agreement-violation",
        "bivalent run in S^rw",
    ],
    "task_solvability.py": [
        "consensus",
        "identity",
        "agree on every task",
    ],
    "early_deciding.py": [
        "satisfied",
        "faults wasted",
        "agreement holds",
    ],
}


@pytest.mark.slow
@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in CASES[script]:
        assert needle in result.stdout, (script, needle)


def test_examples_directory_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES)
