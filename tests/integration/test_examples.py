"""Smoke tests: every example script runs and prints its headline.

The scripts honor ``REPRO_MAX_STATES`` (each exploration budget is
capped by it); the smoke run sets a tight cap — large enough for every
n=3 exploration to complete, small enough that a runaway regression
trips the budget instead of eating the CI runner — and still demands
exit 0 plus the headline output.  CI's examples-smoke job runs the same
contract straight from the shell.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: The tight smoke budget (states per exploration).
SMOKE_MAX_STATES = "200000"

CASES = {
    "quickstart.py": [
        "agreement-violation",
        "satisfied",
        "The bound is exactly t+1",
    ],
    "flp_asynchronous.py": [
        "agreement-violation",
        "decision-violation",
        "validity-violation",
        "EQUAL global states",
    ],
    "mobile_failures.py": [
        "agreement-violation",
        "bivalent run in S^rw",
    ],
    "task_solvability.py": [
        "consensus",
        "identity",
        "agree on every task",
    ],
    "early_deciding.py": [
        "satisfied",
        "faults wasted",
        "agreement holds",
    ],
}


@pytest.mark.slow
@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    proc = subprocess.Popen(
        [sys.executable, str(EXAMPLES / script)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "REPRO_MAX_STATES": SMOKE_MAX_STATES},
    )
    try:
        stdout, stderr = proc.communicate(timeout=900)
    except BaseException:
        # Ctrl-C or a timeout must not leave an orphan example running.
        proc.kill()
        proc.wait()
        raise
    assert proc.returncode == 0, stderr[-2000:]
    for needle in CASES[script]:
        assert needle in stdout, (script, needle)


def test_examples_directory_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES)
