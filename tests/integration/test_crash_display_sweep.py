"""Exhaustive crash-display sweep (the strongest Lemma 3.3 evidence).

For every similar pair of states within the first layer image of every
layered model, the crash-display continuation must keep the pair agreeing
modulo its witness — the executable form of "R displays an arbitrary
crash failure with respect to X" on exactly the sets the proofs use.
"""

import pytest

from repro.core.faulty import check_crash_display
from repro.core.similarity import similarity_witnesses
from repro.layerings.iterated_snapshot import IteratedSnapshotLayering
from repro.layerings.permutation import PermutationLayering
from repro.layerings.s1_mobile import S1MobileLayering
from repro.layerings.synchronic_mp import SynchronicMPLayering
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.mobile import MobileModel
from repro.models.shared_memory import SharedMemoryModel
from repro.models.snapshot import SnapshotMemoryModel
from repro.protocols.candidates import QuorumDecide

SYSTEMS = {
    "s1-mobile": lambda: S1MobileLayering(MobileModel(QuorumDecide(2), 3)),
    "synchronic-rw": lambda: SynchronicRWLayering(
        SharedMemoryModel(QuorumDecide(2), 3)
    ),
    "synchronic-mp": lambda: SynchronicMPLayering(
        AsyncMessagePassingModel(QuorumDecide(2), 3)
    ),
    "permutation": lambda: PermutationLayering(
        AsyncMessagePassingModel(QuorumDecide(2), 3)
    ),
    "iis-snapshot": lambda: IteratedSnapshotLayering(
        SnapshotMemoryModel(QuorumDecide(2), 3)
    ),
}


@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_crash_display_on_first_layer(name):
    layering = SYSTEMS[name]()
    state = layering.model.initial_state((0, 1, 1))
    layer = list(
        dict.fromkeys(child for _, child in layering.successors(state))
    )
    similar_pairs = 0
    for a in range(len(layer)):
        for b in range(a + 1, len(layer)):
            witnesses = similarity_witnesses(layer[a], layer[b], layering)
            for j in witnesses:
                assert check_crash_display(
                    layering, layer[a], layer[b], j, steps=9
                ), (name, a, b, j)
            if witnesses:
                similar_pairs += 1
    assert similar_pairs > 0, f"{name}: no similar pairs found in the layer"


@pytest.mark.parametrize("name", ["s1-mobile", "synchronic-rw"])
def test_crash_display_on_initial_states(name):
    layering = SYSTEMS[name]()
    initials = layering.model.initial_states((0, 1))
    checked = 0
    for a in range(len(initials)):
        for b in range(a + 1, len(initials)):
            witnesses = similarity_witnesses(
                initials[a], initials[b], layering
            )
            for j in witnesses:
                assert check_crash_display(
                    layering, initials[a], initials[b], j, steps=9
                ), (name, a, b, j)
                checked += 1
    assert checked >= 12  # the hypercube's edges, each with one witness
