"""Size sweeps: n=2 (wait-free) and n=4 across the layered models.

The paper's claims are uniform in n >= 2 (Section 6 additionally needs
n >= 3); these sweeps confirm the executable content does not silently
depend on n=3 peculiarities.
"""

import pytest

from repro.analysis.impossibility import refute_candidate
from repro.core.checker import ConsensusChecker, Verdict
from repro.core.connectivity import lemma_3_6
from repro.core.valence import ValenceAnalyzer
from repro.layerings.permutation import PermutationLayering
from repro.layerings.s1_mobile import S1MobileLayering
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.mobile import MobileModel
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.candidates import QuorumDecide, WaitForAll


class TestWaitFreeN2:
    """n=2, 1-resilient = wait-free: consensus is famously impossible."""

    def test_quorum_defeated_everywhere(self):
        # quorum=1 means "decide on your own input immediately": the
        # degenerate wait-free attempt, defeated by agreement.
        for refutation in refute_candidate(
            QuorumDecide(1), 2, max_states=300_000
        ):
            assert refutation.verdict is Verdict.AGREEMENT, (
                refutation.model_name
            )

    def test_waitforall_starved(self):
        model = AsyncMessagePassingModel(WaitForAll(), 2)
        layering = PermutationLayering(model)
        report = ConsensusChecker(layering, 300_000).check_all(model)
        assert report.verdict is Verdict.DECISION

    def test_bivalent_initial_exists(self):
        layering = S1MobileLayering(MobileModel(QuorumDecide(1), 2))
        analyzer = ValenceAnalyzer(layering, 300_000)
        bivalent = lemma_3_6(
            layering.model.initial_states((0, 1)), layering, analyzer
        )
        assert analyzer.valence(bivalent).bivalent


@pytest.mark.slow
class TestSweepN4:
    def test_mobile_defeat(self):
        layering = S1MobileLayering(MobileModel(QuorumDecide(3), 4))
        report = ConsensusChecker(layering, 1_500_000).check_all(
            layering.model
        )
        assert report.verdict is Verdict.AGREEMENT

    def test_synchronic_rw_defeat(self):
        layering = SynchronicRWLayering(
            SharedMemoryModel(QuorumDecide(3), 4)
        )
        report = ConsensusChecker(layering, 1_500_000).check_all(
            layering.model
        )
        assert report.verdict is Verdict.AGREEMENT

    def test_lemma_3_6_n4(self):
        layering = S1MobileLayering(MobileModel(QuorumDecide(3), 4))
        analyzer = ValenceAnalyzer(layering, 1_500_000)
        bivalent = lemma_3_6(
            layering.model.initial_states((0, 1)), layering, analyzer
        )
        assert analyzer.valence(bivalent).bivalent
