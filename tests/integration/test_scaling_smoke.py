"""Parallel-scaling smoke: the pool must never cost more than it pays.

Wall-clock tests are kept out of tier-1 (the ``scaling`` marker — CI
runs them in their own job) because speedup is a property of the
machine, not just the code.  The thresholds are core-aware:

* **>= 2 cores**: 4 workers must beat the sequential engine on
  steady-state time (speedup >= 1.0x) — this is the regression tripwire
  for the bug this suite was written against, where parallel ``check_all``
  ran at 0.4-0.6x *regardless* of cores because every shard re-shipped
  the system and re-ran the contract preflight.
* **1 core**: no speedup is physically possible (the workers timeslice
  one CPU), so the bar is a floor — steady-state may cost at most
  ~1.7x sequential (speedup >= 0.6x).  The historical regression sat
  well below this floor even on one core.

Speedup is computed on steady-state time (total minus the pool's
reported ``spawn_seconds``) so process fan-out cost — real, but bounded
and amortizable — does not mask engine-side regressions.
"""

import os
import time
from dataclasses import replace

import pytest

from repro.analysis.sync_lower_bound import make_st_system
from repro.core.checker import ConsensusChecker
from repro.protocols.eig import EIG
from repro.resilience.pool import PoolConfig

#: Minimum steady-state speedup at 4 workers when real cores exist.
MULTI_CORE_FLOOR = 1.0
#: Minimum steady-state speedup at 4 workers on a single core: pure
#: overhead bound.  The pre-fix engine measured ~0.4-0.6x here.
SINGLE_CORE_FLOOR = 0.6


def _steady_seconds(workers):
    """Run the E14 grid (EIG(3), S^t, n=4, t=2) and return the
    steady-state wall clock and the report."""
    system = make_st_system(EIG(3), 4, 2)
    reports = []
    pool = None
    if workers > 1:
        pool = replace(
            PoolConfig(workers=workers), report_sink=reports.append
        )
    start = time.perf_counter()
    report = ConsensusChecker(system).check_all(
        system.model, workers=workers, pool=pool
    )
    total = time.perf_counter() - start
    spawn = sum(r.spawn_seconds for r in reports)
    return total - spawn, report


@pytest.mark.scaling
def test_four_workers_meet_the_core_aware_floor():
    cores = len(os.sched_getaffinity(0))
    floor = MULTI_CORE_FLOOR if cores >= 2 else SINGLE_CORE_FLOOR
    sequential_seconds, sequential = _steady_seconds(1)
    parallel_seconds, parallel = _steady_seconds(4)
    assert parallel.verdict is sequential.verdict
    assert parallel.states_explored == sequential.states_explored
    speedup = sequential_seconds / parallel_seconds
    assert speedup >= floor, (
        f"steady-state speedup {speedup:.2f}x at 4 workers is below the "
        f"{floor:.1f}x floor for a {cores}-core machine "
        f"(sequential {sequential_seconds:.2f}s, "
        f"parallel {parallel_seconds:.2f}s)"
    )
