"""Graceful shutdown: SIGTERM/SIGINT mid-campaign saves and resumes.

The acceptance bar (ISSUE 6, satellite 3): a campaign interrupted by
SIGTERM or KeyboardInterrupt must write a final checkpoint and exit 130,
and ``--resume`` must then finish with stdout byte-identical to an
uninterrupted run — in both sequential and ``--workers 4`` modes.

The interruption lands at a *deterministic* place: a ``stall`` crashpoint
parks the driver inside the first ``campaign.unit.finish`` hit, the trace
file tells us the process got there, and only then do we signal it.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience.chaos import ENV_SCOPE, ENV_SPECS, ENV_TRACE
from repro.resilience.journal import is_journal

SRC = str(Path(__file__).resolve().parents[2] / "src")

SEQUENTIAL_ARGV = ["lower-bound", "--n", "3", "--t", "1"]
POOLED_ARGV = ["impossibility", "--protocol", "quorum", "--n", "3",
               "--workers", "4"]

STALL = "campaign.unit.finish:1:stall:120"
POLL_DEADLINE = 120.0


def _env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # Never inherit chaos arming from an outer harness.
    for var in (ENV_SPECS, ENV_TRACE, ENV_SCOPE):
        env.pop(var, None)
    env.update(extra or {})
    return env


def _run(argv, timeout=300):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_env(),
    )
    try:
        stdout, stderr = proc.communicate(timeout=timeout)
    except BaseException:
        # Ctrl-C or a timeout mid-test must not leave an orphan campaign.
        proc.kill()
        proc.wait()
        raise
    return subprocess.CompletedProcess(
        proc.args, proc.returncode, stdout, stderr
    )


def _interrupt_mid_campaign(argv, tmp_path, sig):
    """Start a checkpointed campaign, wait until it is provably inside
    the first unit-finish stall, signal it, and return (checkpoint path,
    completed process)."""
    ckpt = tmp_path / "campaign.ckpt"
    trace = tmp_path / "trace.txt"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *argv, "--checkpoint", str(ckpt)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_env({ENV_SPECS: STALL, ENV_TRACE: str(trace)}),
    )
    try:
        deadline = time.monotonic() + POLL_DEADLINE
        while time.monotonic() < deadline:
            if trace.exists() and "campaign.unit.finish" in trace.read_text():
                break
            if proc.poll() is not None:
                _, err = proc.communicate()
                raise AssertionError(
                    f"campaign exited early ({proc.returncode}) before the "
                    f"stall crashpoint:\n{err.decode(errors='replace')}"
                )
            time.sleep(0.05)
        else:
            raise AssertionError("campaign never reached campaign.unit.finish")
        proc.send_signal(sig)
        stdout, stderr = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    return ckpt, proc.returncode, stdout, stderr


class TestSequentialShutdown:
    @pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
    def test_signal_saves_checkpoint_and_exits_130(self, tmp_path, sig):
        ckpt, code, _, stderr = _interrupt_mid_campaign(
            SEQUENTIAL_ARGV, tmp_path, sig
        )
        assert code == 130, stderr.decode(errors="replace")
        assert ckpt.exists() and is_journal(ckpt)
        assert b"interrupted" in stderr.lower()

    def test_resume_after_sigterm_is_byte_identical(self, tmp_path):
        baseline = _run(SEQUENTIAL_ARGV)
        assert baseline.returncode == 0, baseline.stderr.decode()
        ckpt, code, _, _ = _interrupt_mid_campaign(
            SEQUENTIAL_ARGV, tmp_path, signal.SIGTERM
        )
        assert code == 130
        resumed = _run([*SEQUENTIAL_ARGV, "--resume", str(ckpt)])
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == baseline.stdout


class TestPooledShutdown:
    def test_resume_after_sigterm_is_byte_identical(self, tmp_path):
        baseline = _run(POOLED_ARGV)
        assert baseline.returncode == 0, baseline.stderr.decode()
        ckpt, code, _, stderr = _interrupt_mid_campaign(
            POOLED_ARGV, tmp_path, signal.SIGTERM
        )
        assert code == 130, stderr.decode(errors="replace")
        assert ckpt.exists() and is_journal(ckpt)
        resumed = _run([*POOLED_ARGV, "--resume", str(ckpt)])
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == baseline.stdout
