"""Checker cross-validation: consensus-as-a-task vs the consensus checker.

Binary consensus can be checked two independent ways: the dedicated
:class:`ConsensusChecker` (agreement/validity/decision as separate
predicates) and the generic :class:`TaskChecker` against the
``binary_consensus`` decision problem (agreement and validity folded into
Δ-membership).  The verdicts must correspond on every protocol and
layered model:

* SATISFIED ⇔ SATISFIED;
* agreement- or validity-violations surface as Δ-violations;
* decision-violations coincide exactly.
"""

import pytest

from repro.core.checker import ConsensusChecker, Verdict
from repro.layerings.permutation import PermutationLayering
from repro.layerings.s1_mobile import S1MobileLayering
from repro.layerings.st_synchronous import StSynchronousLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.mobile import MobileModel
from repro.models.sync import SynchronousModel
from repro.protocols.candidates import QuorumDecide, WaitForAll
from repro.protocols.floodset import FloodSet
from repro.tasks.catalog import binary_consensus
from repro.tasks.checker import TaskChecker

CASES = {
    "quorum-permutation": lambda: PermutationLayering(
        AsyncMessagePassingModel(QuorumDecide(2), 3)
    ),
    "waitforall-permutation": lambda: PermutationLayering(
        AsyncMessagePassingModel(WaitForAll(), 3)
    ),
    "floodset1-st": lambda: StSynchronousLayering(
        SynchronousModel(FloodSet(1), 3, 1)
    ),
    "floodset2-st": lambda: StSynchronousLayering(
        SynchronousModel(FloodSet(2), 3, 1)
    ),
    "quorum-mobile": lambda: S1MobileLayering(
        MobileModel(QuorumDecide(2), 3)
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_verdicts_correspond(name):
    layering = CASES[name]()
    consensus_report = ConsensusChecker(layering, 600_000).check_all(
        layering.model
    )
    task_report = TaskChecker(
        layering, binary_consensus(3), 600_000
    ).check_all(layering.model)

    if consensus_report.satisfied:
        assert task_report.satisfied, name
    elif consensus_report.verdict in (Verdict.AGREEMENT, Verdict.VALIDITY):
        assert task_report.verdict is Verdict.VALIDITY, (
            name,
            task_report.verdict,
        )
    elif consensus_report.verdict is Verdict.DECISION:
        assert task_report.verdict is Verdict.DECISION, name
    else:  # pragma: no cover - no WRITE_ONCE protocols shipped
        pytest.fail(f"unexpected verdict {consensus_report.verdict}")
