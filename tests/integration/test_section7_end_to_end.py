"""End-to-end Section 7: the solvability matrix (experiment E7) and the
generalized bivalence construction (Lemma 7.1)."""

import pytest

from repro.analysis.solvability_experiments import (
    lemma_7_1_run,
    solvability_matrix,
)
from repro.layerings.permutation import PermutationLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.protocols.candidates import QuorumDecide
from repro.tasks.catalog import EXPECTED_SOLVABLE
from repro.tasks.complex import Complex
from repro.tasks.covering import Covering, OutcomeAnalyzer
from repro.tasks.simplex import Simplex


FAST_TASKS = ["consensus", "identity", "constant", "leader-election"]


class TestSolvabilityMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return solvability_matrix(
            n=3, tasks=FAST_TASKS, max_states=600_000
        )

    def test_every_row_matches_expectation(self, matrix):
        for name, entry in matrix.items():
            assert entry.matches_expectation, name

    def test_thick_verdicts(self, matrix):
        for name, entry in matrix.items():
            assert entry.row.thick_connected == EXPECTED_SOLVABLE[name], name

    def test_solvers_verified(self, matrix):
        for name in ("identity", "constant"):
            assert matrix[name].row.operationally_solved is True

    def test_unsolvable_candidates_defeated(self, matrix):
        for name in ("consensus", "leader-election"):
            defeats = matrix[name].defeats
            assert defeats
            assert all(not r.satisfied for r in defeats.values())

    def test_corollary_7_3_consistency(self, matrix):
        for name, entry in matrix.items():
            assert entry.row.consistent_with_characterization, name


@pytest.mark.slow
class TestSolvabilityMatrixSlowTasks:
    def test_epsilon_agreement_row(self):
        matrix = solvability_matrix(
            n=3, tasks=["epsilon-agreement"], max_states=800_000
        )
        entry = matrix["epsilon-agreement"]
        assert entry.matches_expectation
        assert entry.row.operationally_solved is True

    def test_2_set_agreement_solver_verified(self):
        """The quorum-minimum protocol solves 2-set agreement over
        three-valued inputs, exhaustively, in the permutation and IIS
        submodels — the k=2 side of the BG/HS/SZ frontier."""
        from repro.layerings.iterated_snapshot import (
            IteratedSnapshotLayering,
        )
        from repro.models.snapshot import SnapshotMemoryModel
        from repro.protocols.tasks import KSetAgreementProtocol
        from repro.tasks.catalog import k_set_agreement
        from repro.tasks.checker import TaskChecker

        task = k_set_agreement(3, 2)
        for layering in (
            IteratedSnapshotLayering(
                SnapshotMemoryModel(KSetAgreementProtocol(2), 3)
            ),
            PermutationLayering(
                AsyncMessagePassingModel(KSetAgreementProtocol(2), 3)
            ),
        ):
            report = TaskChecker(layering, task, 1_500_000).check_all(
                layering.model
            )
            assert report.satisfied, report.detail


class TestLemma71:
    def test_covering_bivalent_run(self):
        model = AsyncMessagePassingModel(QuorumDecide(2), 3)
        layering = PermutationLayering(model)
        initials = model.initial_states((0, 1))
        analyzer = OutcomeAnalyzer(layering, max_states=400_000)
        # Build a genuine covering of the runs from Con_0: QuorumDecide
        # violates agreement, so mixed-decision outcomes exist and the
        # two sides must be carved from the actual outcome set — side 0
        # takes every outcome containing a 0-decision, side 1 the
        # all-1-decision outcomes (they overlap on faces; fine).
        outcomes = set()
        for s in initials:
            outcomes |= analyzer.outcome(s).outcomes
        side0 = [d for d in outcomes if 0 in d.values()]
        side1 = [d for d in outcomes if d.values() == {1}]
        covering = Covering(Complex(side0), Complex(side1))
        assert covering.covers(sorted(outcomes, key=repr))
        states = lemma_7_1_run(
            layering, covering, initials, length=3, max_states=400_000
        )
        assert len(states) == 4
        for state in states:
            assert analyzer.outcome(state).bivalent_for(covering)

    def test_rejects_non_covering(self):
        model = AsyncMessagePassingModel(QuorumDecide(2), 3)
        layering = PermutationLayering(model)
        bogus = Covering(
            Complex([Simplex.from_values([9, 9, 9])]),
            Complex([Simplex.from_values([1, 1, 1])]),
        )
        with pytest.raises(ValueError):
            lemma_7_1_run(
                layering,
                bogus,
                model.initial_states((0, 1)),
                length=1,
                max_states=400_000,
            )
