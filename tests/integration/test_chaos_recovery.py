"""Kill -9 anywhere, resume byte-identically: the chaos sweeps.

The unmarked smoke test keeps a small always-on slice in tier-1 — a
kill at a mid-journal-append crashpoint and at a campaign unit boundary
must both recover to byte-identical stdout.  The exhaustive sweeps
(every reachable crashpoint, pooled mode, compaction mid-rename) carry
the ``chaos`` marker and run in the dedicated CI job::

    PYTHONPATH=src python -m pytest tests/integration/test_chaos_recovery.py -m chaos
"""

import pytest

from repro.resilience.chaos import chaos_sweep

SEQUENTIAL_ARGV = ["lower-bound", "--n", "3", "--t", "1"]
POOLED_ARGV = ["impossibility", "--protocol", "quorum", "--n", "3",
               "--workers", "4"]
COMPACTING_ARGV = [*SEQUENTIAL_ARGV, "--compact-every", "2"]


def _assert_all_identical(sweep):
    assert sweep.baseline_returncode == 0
    bad = [r for r in sweep.results if not r.ok]
    assert sweep.ok, "diverged cycles: " + "; ".join(
        f"{r.point}:{r.hit}:{r.mode} ({r.detail or 'stdout differs'})"
        for r in bad
    )


class TestChaosSmoke:
    def test_mid_append_and_unit_boundary_kills_recover(self, tmp_path):
        sweep = chaos_sweep(
            SEQUENTIAL_ARGV,
            workdir=str(tmp_path),
            points=["journal.append.mid", "campaign.unit.start"],
            max_hits_per_point=1,
            timeout=120.0,
        )
        assert {r.point for r in sweep.results} == {
            "journal.append.mid", "campaign.unit.start",
        }
        _assert_all_identical(sweep)


@pytest.mark.chaos
class TestChaosSweeps:
    def test_sequential_every_reachable_crashpoint(self, tmp_path):
        sweep = chaos_sweep(
            SEQUENTIAL_ARGV, workdir=str(tmp_path), max_hits_per_point=2
        )
        # The census must see the whole instrumented engine path, not
        # a trivially short run.
        assert {"driver.lower_bound.campaign", "campaign.unit.finish",
                "journal.append.pre"} <= set(sweep.reachable)
        _assert_all_identical(sweep)

    def test_pooled_campaign_recovers(self, tmp_path):
        sweep = chaos_sweep(
            POOLED_ARGV,
            workdir=str(tmp_path),
            points=["pool.dispatch", "pool.merge",
                    "campaign.unit.finish", "journal.append.mid"],
            max_hits_per_point=1,
            timeout=300.0,
        )
        assert "pool.dispatch" in sweep.reachable
        _assert_all_identical(sweep)

    def test_compaction_mid_rename_recovers(self, tmp_path):
        sweep = chaos_sweep(
            COMPACTING_ARGV,
            workdir=str(tmp_path),
            points=["journal.compact.pre", "journal.compact.rename.pre",
                    "journal.compact.post"],
            max_hits_per_point=1,
            timeout=120.0,
        )
        assert "journal.compact.rename.pre" in sweep.reachable
        _assert_all_identical(sweep)
