"""End-to-end Section 5: impossibility across every model and candidate.

These are the E2/E3/E4 experiments in test form: every candidate protocol,
in every applicable layered model, is classified by the exhaustive checker
and the verdict is never SATISFIED (Theorem 4.2), while the defeat kind
matches the candidate's design.
"""

import pytest

from repro.analysis.impossibility import refute_candidate, standard_layerings
from repro.core.checker import ConsensusChecker, Verdict
from repro.core.connectivity import is_valence_connected, lemma_3_6
from repro.core.valence import ValenceAnalyzer
from repro.protocols.candidates import (
    QuorumDecide,
    RotatingCoordinator,
    WaitForAll,
)
from repro.protocols.full_information import (
    FullInformationProtocol,
    decide_constant,
    decide_min_observed,
    decide_own_input,
)

EXPECTED_DEFEAT = {
    "quorum": Verdict.AGREEMENT,
    "waitforall": Verdict.DECISION,
    "rotating-coordinator": Verdict.AGREEMENT,
    "fi-min": Verdict.AGREEMENT,
    "fi-own": Verdict.AGREEMENT,
    "fi-const": Verdict.VALIDITY,
}


def make_candidate(key):
    return {
        "quorum": lambda: QuorumDecide(2),
        "waitforall": lambda: WaitForAll(),
        "rotating-coordinator": lambda: RotatingCoordinator(3),
        "fi-min": lambda: FullInformationProtocol(
            2, decide_min_observed, "min"
        ),
        "fi-own": lambda: FullInformationProtocol(1, decide_own_input, "own"),
        "fi-const": lambda: FullInformationProtocol(
            1, decide_constant(0), "const0"
        ),
    }[key]()


@pytest.mark.parametrize("key", sorted(EXPECTED_DEFEAT))
def test_candidate_defeated_everywhere_with_expected_kind(key):
    refutations = refute_candidate(make_candidate(key), 3, max_states=600_000)
    assert len(refutations) >= 3
    for refutation in refutations:
        assert refutation.verdict is not Verdict.SATISFIED
        assert refutation.verdict is EXPECTED_DEFEAT[key], (
            key,
            refutation.model_name,
            refutation.report.detail,
        )


@pytest.mark.parametrize(
    "model_name", ["s1-mobile", "synchronic-mp", "permutation-mp", "synchronic-rw"]
)
def test_every_layer_on_bivalent_path_is_valence_connected(model_name):
    """The load-bearing connectivity claim, along an actual bivalent walk."""
    protocol = QuorumDecide(2)
    layering = standard_layerings(protocol, 3)[model_name]
    analyzer = ValenceAnalyzer(layering, max_states=600_000)
    state = lemma_3_6(
        layering.model.initial_states((0, 1)), layering, analyzer
    )
    for _ in range(3):
        layer = [child for _, child in layering.successors(state)]
        assert is_valence_connected(layer, analyzer), model_name
        nxt = next(
            (s for s in layer if analyzer.valence(s).bivalent), None
        )
        if nxt is None:
            break
        state = nxt


def test_schedules_replay_to_their_violations():
    for refutation in refute_candidate(QuorumDecide(2), 3, max_states=600_000):
        report = refutation.report
        layering = standard_layerings(QuorumDecide(2), 3)[
            refutation.model_name
        ]
        state = layering.model.initial_state(report.inputs)
        for action in report.execution.actions:
            state = layering.apply(state, action)
        decisions = layering.decisions(state)
        failed = layering.failed_at(state)
        values = {v for i, v in decisions.items() if i not in failed}
        assert len(values) > 1
