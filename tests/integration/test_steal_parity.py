"""Merge parity under adversarial stealing schedules.

The frontier-sharded parallel engine dispatches shards to whichever
worker is idle (pull-based stealing), so the completion order of shards
is a race.  The acceptance bar here: the merged report is *byte
identical* to the sequential engine's for any schedule the scheduler
could produce — we force the point by permuting dispatch priority with
a seeded RNG on every dispatch cycle, and by SIGKILLing a worker
mid-shard with stealing enabled so a shard migrates between workers
mid-sweep.
"""

import os
import pickle
import random
import re
import signal

import pytest

from repro.core.checker import ConsensusChecker
from repro.layerings.st_synchronous import StSynchronousLayering
from repro.models.sync import SynchronousModel
from repro.protocols.floodset import FloodSet
from repro.resilience import pool as pool_module
from repro.resilience.pool import PoolConfig

SEEDS = [7, 23, 71, 421, 1009]


def _witness_bytes(report):
    """The byte-parity payload: verdict and witnesses, wall clock
    excluded (it is the one legitimately nondeterministic field)."""
    return pickle.dumps(
        (report.verdict, report.inputs, report.execution, report.cycle),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _scrub_clock(text):
    return re.sub(r"\d+\.\d+s", "_s", text)


def _assert_byte_parity(parallel, sequential):
    assert _witness_bytes(parallel) == _witness_bytes(sequential)
    assert parallel.states_explored == sequential.states_explored
    assert _scrub_clock(parallel.detail) == _scrub_clock(sequential.detail)


@pytest.fixture
def scrambled_schedule(monkeypatch):
    """Permute shard dispatch priority with a seeded RNG.

    The supervisor sorts ready shards by ``(attempt, order)`` before an
    idle worker steals the front; reshuffling every pending shard's
    ``order`` on each dispatch cycle makes the steal sequence an
    arbitrary (but seed-reproducible) permutation — a strictly more
    adversarial schedule than any real race.
    """
    original = pool_module._Supervisor._dispatch

    def apply(seed):
        rng = random.Random(seed)

        def dispatch(self):
            orders = [pending.order for pending in self._pending]
            rng.shuffle(orders)
            for pending, order in zip(self._pending, orders):
                pending.order = order
            original(self)

        monkeypatch.setattr(pool_module._Supervisor, "_dispatch", dispatch)

    return apply


class KillOnAssignment(StSynchronousLayering):
    """SIGKILL the worker mid-shard on one input assignment, once: the
    first attempt writes *marker* and dies, the retry (on whichever
    worker steals the orphaned shard) completes."""

    def __init__(self, model, doomed, marker):
        super().__init__(model)
        self.doomed = tuple(doomed)
        self.marker = marker

    def successors(self, state):
        inputs = tuple(local.input for local in state.locals)
        if inputs == self.doomed and not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write("first attempt crashed here")
            os.kill(os.getpid(), signal.SIGKILL)
        return super().successors(state)


class TestScrambledSchedules:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_satisfied_sweep_byte_identical(
        self, st_floodset_tight, scrambled_schedule, seed
    ):
        sequential = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model
        )
        scrambled_schedule(seed)
        parallel = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model, workers=3, shard_states=1
        )
        assert sequential.satisfied
        _assert_byte_parity(parallel, sequential)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_refuted_sweep_byte_identical(
        self, st_floodset_fast, scrambled_schedule, seed
    ):
        """The refutation witness is the *first* failing assignment in
        sweep order, whichever shard happened to finish first."""
        sequential = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model
        )
        scrambled_schedule(seed)
        parallel = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model, workers=3, shard_states=1
        )
        assert sequential.refuted
        _assert_byte_parity(parallel, sequential)


class TestMidShardCrashWithStealing:
    def test_killed_shard_migrates_and_merge_stays_exact(self, tmp_path):
        clean = StSynchronousLayering(SynchronousModel(FloodSet(2), 3, 1))
        sequential = ConsensusChecker(clean).check_all(clean.model)
        marker = str(tmp_path / "crashed-once")
        flaky = KillOnAssignment(
            SynchronousModel(FloodSet(2), 3, 1),
            doomed=(0, 1, 1),
            marker=marker,
        )
        parallel = ConsensusChecker(flaky).check_all(
            flaky.model,
            workers=2,
            shard_states=1,
            pool=PoolConfig(
                workers=2, max_retries=2, retry_backoff=0.01, steal=True
            ),
        )
        assert os.path.exists(marker)  # the mid-shard kill happened
        _assert_byte_parity(parallel, sequential)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_crash_plus_scrambled_schedule(
        self, tmp_path, scrambled_schedule, seed
    ):
        clean = StSynchronousLayering(SynchronousModel(FloodSet(2), 3, 1))
        sequential = ConsensusChecker(clean).check_all(clean.model)
        marker = str(tmp_path / f"crashed-once-{seed}")
        flaky = KillOnAssignment(
            SynchronousModel(FloodSet(2), 3, 1),
            doomed=(1, 0, 1),
            marker=marker,
        )
        scrambled_schedule(seed)
        parallel = ConsensusChecker(flaky).check_all(
            flaky.model,
            workers=3,
            shard_states=1,
            pool=PoolConfig(
                workers=3, max_retries=2, retry_backoff=0.01, steal=True
            ),
        )
        assert os.path.exists(marker)
        _assert_byte_parity(parallel, sequential)
