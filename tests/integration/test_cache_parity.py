"""Cache transparency: cached and uncached runs are indistinguishable.

The hard invariant of :mod:`repro.core.cache`: wrapping a system in a
:class:`CachedSystem` (unbounded *or* LRU-bounded) may change wall-clock
time only.  Per layering family, the consensus checker and the valence
analyzer must produce byte-identical verdicts and witnesses, the same
budget-relevant state counts, and the explorers the same reachable sets
and statistics.
"""

import pickle

import pytest

from repro.core.cache import CachedSystem
from repro.core.checker import ConsensusChecker
from repro.core.exploration import explore, reachable_states
from repro.core.valence import ValenceAnalyzer

#: One representative per layering family exercised in the suite.
FAMILIES = [
    "mobile_floodset",        # S_1 over the mobile-failure model
    "st_floodset_fast",       # S^t synchronous, defeated protocol
    "st_floodset_tight",      # S^t synchronous, verified protocol
    "quorum_permutation",     # permutation layering over async MP
    "quorum_synchronic_rw",   # S^rw over shared memory
]

#: Cache configurations under test: unbounded, and an LRU bound small
#: enough that eviction actually happens on every family.
CACHE_SPECS = [True, 64]


def _witness_bytes(report):
    """The byte-parity payload of a report: verdict and witnesses.

    ``budget_stats`` is deliberately excluded — it carries wall-clock
    seconds, which caching exists to change.
    """
    return pickle.dumps(
        (report.verdict, report.inputs, report.execution, report.cycle),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("spec", CACHE_SPECS, ids=["unbounded", "lru64"])
class TestCheckerParity:
    def test_check_all_byte_identical(self, family, spec, request):
        layering = request.getfixturevalue(family)
        plain = ConsensusChecker(layering).check_all(layering.model)
        cached = ConsensusChecker(layering, cache=spec).check_all(
            layering.model
        )
        assert cached.verdict is plain.verdict
        assert _witness_bytes(cached) == _witness_bytes(plain)
        assert cached.states_explored == plain.states_explored
        assert cached.detail == plain.detail


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("spec", CACHE_SPECS, ids=["unbounded", "lru64"])
class TestValenceParity:
    def test_initial_state_valences_identical(self, family, spec, request):
        layering = request.getfixturevalue(family)
        plain = ValenceAnalyzer(layering)
        cached = ValenceAnalyzer(layering, cache=spec)
        for state in layering.model.initial_states((0, 1)):
            a = plain.valence(state)
            b = cached.valence(state)
            assert a.values == b.values
            assert a.diverges == b.diverges
            assert a.complete and b.complete
        assert plain.explored_states == cached.explored_states


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("spec", CACHE_SPECS, ids=["unbounded", "lru64"])
class TestExplorationParity:
    def test_reachable_sets_identical(self, family, spec, request):
        layering = request.getfixturevalue(family)
        roots = layering.model.initial_states((0, 1))
        plain = reachable_states(layering, roots, max_depth=2)
        cached = reachable_states(layering, roots, max_depth=2, cache=spec)
        assert cached == plain

    def test_explore_stats_identical(self, family, spec, request):
        layering = request.getfixturevalue(family)
        roots = layering.model.initial_states((0, 1))
        plain = explore(layering, roots, max_depth=2)
        cached = explore(layering, roots, max_depth=2, cache=spec)
        assert cached.states == plain.states
        assert cached.edges == plain.edges
        assert cached.duplicate_hits == plain.duplicate_hits
        assert cached.frontier_sizes == plain.frontier_sizes
        assert cached.min_layer_size == plain.min_layer_size
        assert cached.max_layer_size == plain.max_layer_size
        assert cached.cache_stats is not None
        assert plain.cache_stats is None


class TestSharedCacheAcrossEngines:
    def test_one_cache_serves_checker_and_analyzer(self, mobile_floodset):
        """The E15 usage pattern: one shared cache, several engines."""
        shared = CachedSystem(mobile_floodset)
        plain_report = ConsensusChecker(mobile_floodset).check_all(
            mobile_floodset.model
        )
        report = ConsensusChecker(mobile_floodset, cache=shared).check_all(
            mobile_floodset.model
        )
        warm = shared.stats()
        analyzer = ValenceAnalyzer(mobile_floodset, cache=shared)
        for state in mobile_floodset.model.initial_states((0, 1)):
            analyzer.valence(state)
        assert _witness_bytes(report) == _witness_bytes(plain_report)
        # The analyzer re-walks states the checker already expanded, so
        # the shared cache must have served it mostly from memory.
        after = shared.stats()
        assert after.hits > warm.hits
        assert after.misses - warm.misses < warm.misses

    def test_lru_eviction_does_not_change_checker_verdict(
        self, st_floodset_tight
    ):
        tiny = ConsensusChecker(st_floodset_tight, cache=8)
        evicting = tiny.check_all(st_floodset_tight.model)
        plain = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model
        )
        assert _witness_bytes(evicting) == _witness_bytes(plain)
        assert evicting.states_explored == plain.states_explored
        assert tiny.cache_stats().evictions > 0
