"""Cross-analyzer consistency: valence vs. outcome analysis.

The ValenceAnalyzer (Section 3 valence over decision *values*) and the
OutcomeAnalyzer (Section 7 generalized valence over decision *simplexes*)
are independent implementations over the same layered systems; for
consensus-style protocols their results must cohere:

* every value the valence analyzer reaches appears in some outcome
  simplex, and vice versa;
* divergence verdicts agree;
* a state bivalent in values is bivalent for the value-split covering.
"""

import pytest

from repro.core.valence import ValenceAnalyzer
from repro.layerings.permutation import PermutationLayering
from repro.layerings.s1_mobile import S1MobileLayering
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.mobile import MobileModel
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.candidates import QuorumDecide, WaitForAll
from repro.tasks.complex import Complex
from repro.tasks.covering import Covering, OutcomeAnalyzer
from repro.tasks.simplex import Simplex


def systems():
    return {
        "s1-mobile": S1MobileLayering(MobileModel(QuorumDecide(2), 3)),
        "synchronic-rw": SynchronicRWLayering(
            SharedMemoryModel(QuorumDecide(2), 3)
        ),
        "permutation": PermutationLayering(
            AsyncMessagePassingModel(QuorumDecide(2), 3)
        ),
    }


@pytest.mark.parametrize("name", sorted(systems()))
def test_values_match_outcome_values(name):
    layering = systems()[name]
    valence = ValenceAnalyzer(layering, 600_000)
    outcome = OutcomeAnalyzer(layering, 600_000)
    for inputs in [(0, 1, 1), (0, 0, 0), (1, 0, 1)]:
        state = layering.model.initial_state(inputs)
        v = valence.valence(state)
        o = outcome.outcome(state)
        outcome_values = set()
        for simplex in o.outcomes:
            outcome_values |= simplex.values()
        assert set(v.values) == outcome_values, (name, inputs)
        # The outcome analyzer's divergence is the precise decision-
        # violation verdict; the valence analyzer's is its over-
        # approximation (it cannot see scheduling-crashes in the
        # no-finite-failure models) — see ValenceResult's docstring.
        if o.diverges:
            assert v.diverges, (name, inputs)


@pytest.mark.parametrize("name", sorted(systems()))
def test_value_bivalence_matches_value_split_covering(name):
    layering = systems()[name]
    valence = ValenceAnalyzer(layering, 600_000)
    outcome = OutcomeAnalyzer(layering, 600_000)
    state = layering.model.initial_state((0, 1, 1))
    o = outcome.outcome(state)
    side0 = [d for d in o.outcomes if 0 in d.values()]
    side1 = [d for d in o.outcomes if 1 in d.values()]
    if not (side0 and side1):
        pytest.skip("state not bivalent in this system")
    covering = Covering(Complex(side0), Complex(side1))
    assert valence.valence(state).bivalent
    assert o.bivalent_for(covering)


def test_waitforall_divergence_agrees():
    layering = PermutationLayering(
        AsyncMessagePassingModel(WaitForAll(), 3)
    )
    valence = ValenceAnalyzer(layering, 600_000)
    outcome = OutcomeAnalyzer(layering, 600_000)
    state = layering.model.initial_state((0, 1, 1))
    assert valence.valence(state).diverges
    assert outcome.outcome(state).diverges


def test_settled_starvation_outcomes_are_not_divergence():
    """A 1-resilient solver starved of one process yields a settled
    2-simplex outcome in the OutcomeAnalyzer and no divergence — while
    the ValenceAnalyzer's terminal notion (all non-failed decided) never
    fires on those loops; the two analyzers must still agree that the
    decision requirement holds."""
    from repro.protocols.tasks import EpsilonAgreementProtocol

    layering = PermutationLayering(
        AsyncMessagePassingModel(EpsilonAgreementProtocol(), 3)
    )
    outcome = OutcomeAnalyzer(layering, 800_000)
    state = layering.model.initial_state((0, 1, 1))
    o = outcome.outcome(state)
    assert not o.diverges
    assert any(len(s) == 2 for s in o.outcomes)
