"""End-to-end Section 6: the t+1 lower bound as the E5/E6 experiments.

The crossover claim of Corollary 6.3, mechanized: for each (n, t) in the
sweep, *every* candidate deciding in <= t rounds is defeated with an
explicit failure schedule, and the t+1-round protocols verify exhaustively
— the bound is exactly where the paper says it is.
"""

import pytest

from repro.analysis.sync_lower_bound import (
    defeat_fast_candidates,
    lemma_6_1,
    lemma_6_2,
    make_st_system,
    synchronous_bivalent_start,
    verify_tight_protocols,
)
from repro.core.checker import ConsensusChecker, Verdict
from repro.core.valence import ValenceAnalyzer
from repro.protocols.floodset import FloodSet


class TestCrossover:
    def test_n3_t1_crossover(self):
        defeated = defeat_fast_candidates(3, 1)
        verified = verify_tight_protocols(3, 1)
        assert all(row.defeated for row in defeated)
        assert all(row.report.satisfied for row in verified)

    def test_n4_t1_crossover(self):
        defeated = defeat_fast_candidates(4, 1, max_states=800_000)
        assert all(row.defeated for row in defeated)
        rows = verify_tight_protocols(
            4, 1, max_states=800_000, include_full_model=False
        )
        assert all(row.report.satisfied for row in rows)

    def test_defeat_schedule_uses_at_most_t_failures(self):
        for row in defeat_fast_candidates(3, 1):
            layering = make_st_system(FloodSet(row.rounds), 3, 1)
            state = layering.model.initial_state(row.report.inputs)
            for action in row.report.execution.actions:
                state = layering.apply(state, action)
            assert len(layering.model.failed_at(state)) <= 1


class TestBivalenceHorizon:
    """Lemmas 6.1 + 6.2 compose into the t+1 bound for concrete runs."""

    @pytest.mark.parametrize("t", [1, 2])
    def test_bivalent_through_round_t_minus_1(self, t):
        layering = make_st_system(FloodSet(t + 1), 3, t)
        analyzer = ValenceAnalyzer(layering, max_states=800_000)
        start = synchronous_bivalent_start(layering, analyzer)
        report, execution = lemma_6_1(layering, analyzer, start)
        assert report.holds
        final = execution.final
        assert lemma_6_2(layering, analyzer, final).holds

    def test_fast_decision_contradicts_bivalence(self):
        """A protocol deciding by round t has a bivalent state whose every
        non-failed process decided — the contradiction Lemma 6.2 exposes,
        observable as the agreement violation."""
        layering = make_st_system(FloodSet(1), 3, 1)
        report = ConsensusChecker(layering).check_all(layering.model)
        assert report.verdict is Verdict.AGREEMENT
