"""Property-based tests for the graph and ordering substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.graphs import (
    Graph,
    connected_components,
    diameter,
    is_connected,
    shortest_path,
    shortest_path_lengths,
)
from repro.util.orderings import (
    adjacent_transposition_chain,
    apply_transposition,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=40
)


@given(edge_lists)
def test_components_partition_vertices(edges):
    g = Graph(edges=edges)
    comps = connected_components(g)
    union = set()
    for comp in comps:
        assert not (union & comp)  # pairwise disjoint
        union |= comp
    assert union == set(g.vertices())


@given(edge_lists)
def test_no_cross_component_edges(edges):
    g = Graph(edges=edges)
    comp_of = {}
    for idx, comp in enumerate(connected_components(g)):
        for v in comp:
            comp_of[v] = idx
    for u in g.vertices():
        for v in g.neighbors(u):
            assert comp_of[u] == comp_of[v]


@given(edge_lists, st.integers(0, 12), st.integers(0, 12))
def test_shortest_path_is_shortest_and_valid(edges, a, b):
    g = Graph(edges=edges)
    g.add_vertex(a)
    g.add_vertex(b)
    path = shortest_path(g, a, b)
    dist = shortest_path_lengths(g, a)
    if path is None:
        assert b not in dist
    else:
        assert path[0] == a and path[-1] == b
        assert len(path) - 1 == dist[b]
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v)


@given(edge_lists)
@settings(max_examples=60)
def test_diameter_bounds_distances(edges):
    g = Graph(edges=edges)
    if len(g) == 0 or not is_connected(g):
        return
    d = diameter(g)
    for v in g.vertices():
        assert max(shortest_path_lengths(g, v).values()) <= d


perms = st.permutations(list(range(6)))


@given(perms, perms)
def test_transposition_chain_connects(start, end):
    chain = adjacent_transposition_chain(tuple(start), tuple(end))
    assert chain[0] == tuple(start)
    assert chain[-1] == tuple(end)
    for a, b in zip(chain, chain[1:]):
        diffs = [i for i in range(len(a)) if a[i] != b[i]]
        assert len(diffs) == 2 and diffs[1] == diffs[0] + 1


@given(perms, st.integers(0, 4))
def test_transposition_involution(perm, k):
    perm = tuple(perm)
    once = apply_transposition(perm, k)
    assert apply_transposition(once, k) == perm
    assert sorted(once) == sorted(perm)


@given(perms, perms)
def test_chain_length_bounded_by_inversions(start, end):
    """The bubble chain is at most n(n-1)/2 + 1 long."""
    chain = adjacent_transposition_chain(tuple(start), tuple(end))
    n = len(start)
    assert len(chain) <= n * (n - 1) // 2 + 1
