"""Property-based tests on model invariants.

These check the structural properties every analysis relies on, across
randomly chosen inputs and schedules:

* determinism — applying the same action twice gives the same state;
* totality — every state has at least one enabled action;
* canonical hashability — equal states hash equal after round trips;
* decision write-once under arbitrary schedules;
* the layer-boundary invariants of the shared-memory and async models.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layerings.permutation import PermutationLayering
from repro.layerings.s1_mobile import S1MobileLayering
from repro.layerings.st_synchronous import StSynchronousLayering
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.mobile import MobileModel
from repro.models.shared_memory import SharedMemoryModel
from repro.models.sync import SynchronousModel
from repro.protocols.candidates import QuorumDecide
from repro.protocols.floodset import FloodSet

inputs3 = st.tuples(
    st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)
)
schedule = st.lists(st.integers(0, 10**6), min_size=1, max_size=5)


def walk(layering, state, picks):
    """Follow a pseudo-random layer-action schedule."""
    trace = [state]
    for pick in picks:
        actions = list(layering.layer_actions(state))
        state = layering.apply(state, actions[pick % len(actions)])
        trace.append(state)
    return trace


def all_layerings(inputs):
    return [
        S1MobileLayering(MobileModel(FloodSet(2), 3)),
        StSynchronousLayering(SynchronousModel(FloodSet(2), 3, 1)),
        SynchronicRWLayering(SharedMemoryModel(QuorumDecide(2), 3)),
        PermutationLayering(
            AsyncMessagePassingModel(QuorumDecide(2), 3)
        ),
    ]


@given(inputs3, schedule)
@settings(max_examples=40, deadline=None)
def test_determinism_along_schedules(inputs, picks):
    for layering in all_layerings(inputs):
        state = layering.model.initial_state(inputs)
        for pick in picks:
            actions = list(layering.layer_actions(state))
            action = actions[pick % len(actions)]
            once = layering.apply(state, action)
            twice = layering.apply(state, action)
            assert once == twice
            assert hash(once) == hash(twice)
            state = once


@given(inputs3, schedule)
@settings(max_examples=40, deadline=None)
def test_totality_along_schedules(inputs, picks):
    for layering in all_layerings(inputs):
        for state in walk(
            layering, layering.model.initial_state(inputs), picks
        ):
            assert list(layering.layer_actions(state))
            assert list(layering.model.actions(state))


@given(inputs3, schedule)
@settings(max_examples=40, deadline=None)
def test_decisions_write_once(inputs, picks):
    for layering in all_layerings(inputs):
        trace = walk(layering, layering.model.initial_state(inputs), picks)
        for before, after in zip(trace, trace[1:]):
            d_before = layering.decisions(before)
            d_after = layering.decisions(after)
            for i, v in d_before.items():
                assert d_after.get(i) == v


@given(inputs3, schedule)
@settings(max_examples=40, deadline=None)
def test_failed_set_monotone_in_sync(inputs, picks):
    layering = StSynchronousLayering(SynchronousModel(FloodSet(2), 3, 1))
    trace = walk(layering, layering.model.initial_state(inputs), picks)
    for before, after in zip(trace, trace[1:]):
        assert layering.failed_at(before) <= layering.failed_at(after)
        assert len(layering.failed_at(after)) <= 1  # t = 1


@given(inputs3, schedule)
@settings(max_examples=40, deadline=None)
def test_layer_boundaries_preserved(inputs, picks):
    rw = SynchronicRWLayering(SharedMemoryModel(QuorumDecide(2), 3))
    for state in walk(rw, rw.model.initial_state(inputs), picks):
        assert rw.model.at_phase_boundary(state)
    perm = PermutationLayering(
        AsyncMessagePassingModel(QuorumDecide(2), 3)
    )
    for state in walk(perm, perm.model.initial_state(inputs), picks):
        assert perm.model.at_phase_boundary(state)


@given(inputs3, schedule)
@settings(max_examples=25, deadline=None)
def test_validity_of_floodset_decisions(inputs, picks):
    """Along any S^t schedule, FloodSet decisions are inputs of the run."""
    layering = StSynchronousLayering(SynchronousModel(FloodSet(2), 3, 1))
    for state in walk(layering, layering.model.initial_state(inputs), picks):
        for i, v in layering.decisions(state).items():
            assert v in inputs
