"""Property-based tests for ordered partitions (IIS schedules)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.orderings import ordered_partitions

FUBINI = {0: 1, 1: 1, 2: 3, 3: 13, 4: 75}


@given(st.integers(0, 4))
def test_fubini_counts(n):
    assert len(ordered_partitions(range(n))) == FUBINI[n]


@given(st.sets(st.integers(0, 6), max_size=4))
@settings(max_examples=50)
def test_blocks_partition_items(items):
    for partition in ordered_partitions(sorted(items)):
        union = set()
        for block in partition:
            assert block, "blocks are nonempty"
            assert not (union & block), "blocks are disjoint"
            union |= block
        assert union == items


@given(st.sets(st.integers(0, 6), min_size=1, max_size=4))
@settings(max_examples=50)
def test_partitions_distinct(items):
    partitions = ordered_partitions(sorted(items))
    assert len(partitions) == len(set(partitions))


@given(st.sets(st.integers(0, 6), min_size=1, max_size=4))
@settings(max_examples=50)
def test_extremes_present(items):
    partitions = set(ordered_partitions(sorted(items)))
    assert (frozenset(items),) in partitions  # the single block
    # every permutation of singletons is present
    singleton_count = sum(
        1
        for p in partitions
        if all(len(b) == 1 for b in p)
    )
    import math

    assert singleton_count == math.factorial(len(items))
