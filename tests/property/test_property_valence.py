"""Property-based tests for the valence analyzer on random toy systems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.valence import ValenceAnalyzer
from tests.conftest import ToySystem

# Random small transition systems over states s0..s7, with terminal
# decisions attached to a random subset.
state_names = [f"s{i}" for i in range(8)]


@st.composite
def toy_systems(draw):
    edges = {}
    for name in state_names:
        succ_count = draw(st.integers(1, 3))
        targets = draw(
            st.lists(
                st.sampled_from(state_names),
                min_size=succ_count,
                max_size=succ_count,
            )
        )
        edges[name] = [(f"a{k}", t) for k, t in enumerate(targets)]
    decided = draw(st.sets(st.sampled_from(state_names), max_size=4))
    decisions = {}
    for name in decided:
        value = draw(st.integers(0, 1))
        decisions[name] = {0: value, 1: value}
    return ToySystem(edges=edges, decisions=decisions)


@given(toy_systems())
@settings(max_examples=80, deadline=None)
def test_values_contain_all_children(sys):
    an = ValenceAnalyzer(sys)
    for name in state_names:
        state = sys.state(name)
        result = an.valence(state)
        if an.is_terminal(state):
            continue
        for _, child in sys.successors(state):
            child_result = an.valence(child)
            assert child_result.values <= result.values
            if child_result.diverges:
                assert result.diverges


@given(toy_systems())
@settings(max_examples=80, deadline=None)
def test_own_decisions_included(sys):
    an = ValenceAnalyzer(sys)
    for name in state_names:
        state = sys.state(name)
        assert an.own_values(state) <= an.valence(state).values


@given(toy_systems())
@settings(max_examples=80, deadline=None)
def test_terminal_states_do_not_diverge(sys):
    an = ValenceAnalyzer(sys)
    for name in state_names:
        state = sys.state(name)
        if an.is_terminal(state):
            result = an.valence(state)
            assert not result.diverges
            assert result.values == an.own_values(state)


@given(toy_systems())
@settings(max_examples=80, deadline=None)
def test_no_decisions_reachable_implies_divergence(sys):
    """A state with no reachable decided values must diverge (the system
    is total, so some infinite — hence cyclic — extension exists)."""
    an = ValenceAnalyzer(sys)
    for name in state_names:
        result = an.valence(sys.state(name))
        if not result.values:
            assert result.diverges


@given(toy_systems())
@settings(max_examples=50, deadline=None)
def test_valence_matches_naive_reachability(sys):
    """Cross-check values against a plain BFS reachability oracle."""
    an = ValenceAnalyzer(sys)
    for name in state_names:
        root = sys.state(name)
        # naive: collect own_values over every reachable state, stopping
        # expansion at terminal states (as the analyzer defines them)
        seen = {root}
        frontier = [root]
        expected = set()
        while frontier:
            state = frontier.pop()
            expected |= an.own_values(state)
            if an.is_terminal(state):
                continue
            for _, child in sys.successors(state):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        assert an.valence(root).values == frozenset(expected)
