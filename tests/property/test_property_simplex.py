"""Property-based tests for simplexes and complexes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks.complex import Complex, intersection_exact
from repro.tasks.simplex import Simplex

vertices = st.tuples(st.integers(0, 3), st.integers(0, 2))
simplex_vertex_sets = st.sets(vertices, max_size=4).filter(
    lambda vs: len({i for i, _ in vs}) == len(vs)
)
simplexes = simplex_vertex_sets.map(Simplex)
complexes = st.lists(simplexes, max_size=5).map(Complex)


@given(simplexes)
def test_simplex_faces_are_faces(s):
    for face in s.faces():
        assert face <= s


@given(simplexes)
def test_face_count_is_powerset(s):
    assert len(list(s.faces())) == 2 ** len(s)


@given(simplexes, simplexes)
def test_intersection_commutative_and_contained(a, b):
    inter = a.intersection(b)
    assert inter == b.intersection(a)
    assert inter <= a and inter <= b


@given(simplexes, st.integers(0, 3))
def test_without_removes_id(s, i):
    assert i not in s.without(i).ids()


@given(simplexes, st.sets(st.integers(0, 3)))
def test_restrict_ids_subset(s, ids):
    r = s.restrict(ids)
    assert r.ids() <= frozenset(ids) & s.ids()
    assert r <= s


@given(complexes)
def test_complex_closed_under_faces(c):
    for facet in c.facets:
        for face in facet.faces():
            assert face in c


@given(complexes)
def test_facets_are_maximal(c):
    for f in c.facets:
        for g in c.facets:
            assert not f < g


@given(complexes, complexes)
@settings(max_examples=60)
def test_intersection_matches_oracle(a, b):
    fast = a.intersection(b)
    slow = intersection_exact(a, b)
    assert set(fast.simplexes()) == set(slow.simplexes())


@given(complexes, complexes)
@settings(max_examples=60)
def test_intersection_is_lower_bound(a, b):
    inter = a.intersection(b)
    for s in inter.simplexes():
        assert s in a and s in b


@given(complexes, complexes)
@settings(max_examples=60)
def test_union_is_upper_bound(a, b):
    u = a.union(b)
    for s in a.simplexes():
        assert s in u
    for s in b.simplexes():
        assert s in u


@given(complexes)
def test_union_idempotent(c):
    assert c.union(c) == c


@given(simplexes, simplexes)
def test_union_of_compatible_contains_both(a, b):
    overlap = a.ids() & b.ids()
    if any(a.value_of(i) != b.value_of(i) for i in overlap):
        return  # incompatible, union raises (tested elsewhere)
    u = a.union(b)
    assert a <= u and b <= u
