"""Unit tests for the rotating-coordinator candidate."""

import pytest

from repro.protocols.candidates import CoordinatorState, RotatingCoordinator


@pytest.fixture
def proto():
    return RotatingCoordinator(phases=3)


def coord_msg(pid, phase, estimate):
    return ("coord", pid, phase, estimate)


class TestBasics:
    def test_phases_validated(self):
        with pytest.raises(ValueError):
            RotatingCoordinator(0)

    def test_initial_estimate_is_input(self, proto):
        s = proto.initial_local(1, 3, 7)
        assert s.estimate == 7
        assert proto.decision(1, 3, s) is None

    def test_emit_carries_phase_and_estimate(self, proto):
        s = proto.initial_local(2, 3, 1)
        assert proto.emit(2, 3, s) == ("coord", 2, 0, 1)

    def test_freezes_after_phases(self, proto):
        s = CoordinatorState(pid=0, input=1, estimate=1, phase=3, decided=1)
        assert proto.emit(0, 3, s) is None
        assert proto.observe(0, 3, s, ()) == s


class TestAdoption:
    def test_adopts_coordinator_estimate(self, proto):
        # phase 0's coordinator is process 0
        s = proto.initial_local(1, 3, 1)
        s1 = proto.observe(1, 3, s, ((0, coord_msg(0, 0, 0)),))
        assert s1.estimate == 0
        assert s1.phase == 1

    def test_ignores_non_coordinator(self, proto):
        s = proto.initial_local(1, 3, 1)
        s1 = proto.observe(1, 3, s, ((2, coord_msg(2, 0, 0)),))
        assert s1.estimate == 1

    def test_ignores_stale_phase(self, proto):
        s = proto.initial_local(1, 3, 1)
        s1 = proto.observe(1, 3, s, ((0, coord_msg(0, 2, 0)),))
        assert s1.estimate == 1

    def test_coordinator_keeps_own_estimate(self, proto):
        s = proto.initial_local(0, 3, 1)  # process 0 coordinates phase 0
        s1 = proto.observe(0, 3, s, ((2, coord_msg(2, 0, 0)),))
        assert s1.estimate == 1

    def test_decides_estimate_at_final_phase(self):
        proto = RotatingCoordinator(1)
        s = proto.initial_local(1, 3, 1)
        s1 = proto.observe(1, 3, s, ((0, coord_msg(0, 0, 0)),))
        assert proto.decision(1, 3, s1) == 0


class TestDefeat:
    def test_defeated_in_every_layered_model(self):
        from repro.analysis.impossibility import refute_candidate
        from repro.core.checker import Verdict

        for refutation in refute_candidate(
            RotatingCoordinator(3), 3, max_states=900_000
        ):
            assert refutation.verdict is Verdict.AGREEMENT, (
                refutation.model_name
            )
