"""Unit tests for Exponential Information Gathering."""

import pytest

from repro.protocols.eig import EIG, EIGState


@pytest.fixture
def proto():
    return EIG(rounds=2)


class TestTree:
    def test_initial_root(self, proto):
        s = proto.initial_local(0, 3, 5)
        assert s.value_at(()) == 5
        assert s.level(0) == frozenset({((), 5)})

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            EIG(0)

    def test_round1_sends_root(self, proto):
        s = proto.initial_local(0, 3, 5)
        out = proto.outgoing(0, 3, s)
        assert out[1] == frozenset({((), 5)})

    def test_round1_receives_level1(self, proto):
        s = proto.initial_local(0, 3, 0)
        s1 = proto.transition(
            0, 3, s, {1: frozenset({((), 1)})}
        )
        assert s1.value_at((1,)) == 1
        assert s1.round == 1

    def test_round2_relays_level1(self, proto):
        s = proto.initial_local(0, 3, 0)
        s1 = proto.transition(0, 3, s, {1: frozenset({((), 1)})})
        out = proto.outgoing(0, 3, s1)
        assert ((1,), 1) in out[2]
        # root not re-sent at round 2
        assert ((), 0) not in out[2]

    def test_relay_label_extension(self, proto):
        s = proto.initial_local(0, 3, 0)
        s1 = proto.transition(0, 3, s, {1: frozenset({((), 1)})})
        s2 = proto.transition(
            0, 3, s1, {2: frozenset({((1,), 1)})}
        )
        assert s2.value_at((1, 2)) == 1

    def test_duplicate_sender_in_label_ignored(self, proto):
        s = proto.initial_local(0, 3, 0)
        s1 = proto.transition(0, 3, s, {1: frozenset({((), 1)})})
        s2 = proto.transition(
            0, 3, s1, {1: frozenset({((1,), 9)})}
        )
        assert s2.value_at((1, 1)) is None

    def test_wrong_level_ignored(self, proto):
        s = proto.initial_local(0, 3, 0)
        # a level-1 node delivered at round 1 (expects level-0) is dropped
        s1 = proto.transition(0, 3, s, {1: frozenset({((2,), 1)})})
        assert s1.value_at((2, 1)) is None


class TestDecision:
    def test_decides_min_over_tree(self, proto):
        s = proto.initial_local(0, 3, 2)
        s1 = proto.transition(0, 3, s, {1: frozenset({((), 1)})})
        s2 = proto.transition(0, 3, s1, {2: frozenset({((1,), 0)})})
        assert proto.decision(0, 3, s2) == 0

    def test_freezes_after_final_round(self, proto):
        s = proto.initial_local(0, 3, 2)
        s1 = proto.transition(0, 3, s, {})
        s2 = proto.transition(0, 3, s1, {})
        s3 = proto.transition(0, 3, s2, {1: frozenset({((), 0)})})
        assert s3 == s2
        assert proto.outgoing(0, 3, s2) == {}

    def test_state_hashable(self, proto):
        s = proto.initial_local(1, 3, 4)
        assert hash(s) == hash(
            EIGState(4, frozenset({((), 4)}), 0)
        )
