"""Unit and exhaustive tests for the early-deciding FloodSet."""

import pytest

from repro.analysis.sync_lower_bound import make_st_system
from repro.core.checker import ConsensusChecker
from repro.models.sync import NO_FAILURE, SynchronousModel, fail_action
from repro.protocols.early_deciding import EarlyDecidingFloodSet


@pytest.fixture
def proto():
    return EarlyDecidingFloodSet(t=1)


class TestUnit:
    def test_t_validated(self):
        with pytest.raises(ValueError):
            EarlyDecidingFloodSet(0)

    def test_failure_free_round_decides_immediately(self, proto):
        model = SynchronousModel(proto, 3, 1)
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, NO_FAILURE)
        assert model.decisions(state) == {0: 0, 1: 0, 2: 0}

    def test_omission_delays_victim_only(self, proto):
        model = SynchronousModel(proto, 3, 1)
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, fail_action((0, frozenset({1}))))
        decisions = model.decisions(state)
        assert 1 not in decisions  # p1 saw a hole, waits
        assert decisions.get(2) == 0  # p2 heard everyone, decides early

    def test_decided_processes_keep_broadcasting(self, proto):
        model = SynchronousModel(proto, 3, 1)
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, fail_action((0, frozenset({1}))))
        # round 2: p2 (decided, holding 0) must relay; p1 converges to 0.
        state = model.apply(state, NO_FAILURE)
        decisions = model.decisions(state)
        assert decisions[1] == 0
        values = {decisions[1], decisions[2]}
        assert values == {0}

    def test_unconditional_decision_at_t_plus_1(self, proto):
        model = SynchronousModel(proto, 3, 1)
        state = model.initial_state((1, 1, 1))
        state = model.apply(state, fail_action((0, frozenset({1}))))
        state = model.apply(state, NO_FAILURE)
        assert set(model.decisions(state)) == {0, 1, 2}


class TestExhaustive:
    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1), (4, 2)])
    def test_satisfies_consensus_under_st(self, n, t):
        layering = make_st_system(EarlyDecidingFloodSet(t), n, t)
        report = ConsensusChecker(layering, 2_000_000).check_all(
            layering.model
        )
        assert report.satisfied, report.detail

    def test_satisfies_consensus_full_model(self):
        model = SynchronousModel(EarlyDecidingFloodSet(1), 3, 1)
        report = ConsensusChecker(model, 2_000_000).check_all(model)
        assert report.satisfied

    def test_beats_t_plus_1_on_clean_runs(self):
        """The early decision is real: failure-free runs decide in round
        1 even with t=2 (where FloodSet would take 3 rounds)."""
        proto = EarlyDecidingFloodSet(t=2)
        model = SynchronousModel(proto, 4, 2)
        state = model.initial_state((0, 1, 1, 0))
        state = model.apply(state, NO_FAILURE)
        assert len(model.decisions(state)) == 4
