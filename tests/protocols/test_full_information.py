"""Unit tests for the truncated full-information protocol."""

import pytest

from repro.protocols.base import MessageBatch
from repro.protocols.full_information import (
    FullInformationProtocol,
    View,
    decide_constant,
    decide_min_observed,
    decide_own_input,
)


@pytest.fixture
def fi():
    return FullInformationProtocol(phases=2)


class TestViews:
    def test_initial_view(self, fi):
        v = fi.initial_local(0, 3, 7)
        assert v.pid == 0 and v.input == 7 and v.phase == 0
        assert v.history == ()
        assert fi.decision(0, 3, v) is None

    def test_emit_is_whole_view(self, fi):
        v = fi.initial_local(1, 3, 0)
        assert fi.emit(1, 3, v) is v

    def test_observe_advances_phase(self, fi):
        v = fi.initial_local(0, 3, 0)
        other = fi.initial_local(1, 3, 1)
        v1 = fi.observe(0, 3, v, ((1, other),))
        assert v1.phase == 1
        assert v1.history == (((1, other),),)

    def test_freeze_at_bound(self, fi):
        v = fi.initial_local(0, 3, 0)
        v1 = fi.observe(0, 3, v, ())
        v2 = fi.observe(0, 3, v1, ())
        assert v2.phase == 2
        assert fi.emit(0, 3, v2) is None
        v3 = fi.observe(0, 3, v2, ())
        assert v3 == v2  # identity after freezing

    def test_hashable(self, fi):
        v = fi.initial_local(0, 3, 0)
        v1 = fi.observe(0, 3, v, ((1, fi.initial_local(1, 3, 1)),))
        assert hash(v1) == hash(
            fi.observe(0, 3, v, ((1, fi.initial_local(1, 3, 1)),))
        )

    def test_zero_phase_decides_immediately(self):
        fi0 = FullInformationProtocol(0, decide_own_input, "own")
        v = fi0.initial_local(2, 3, 1)
        assert v.decided == 1

    def test_negative_phases_rejected(self):
        with pytest.raises(ValueError):
            FullInformationProtocol(-1)


class TestObservedInputs:
    def test_direct_observation(self, fi):
        v = fi.initial_local(0, 3, 0)
        other = fi.initial_local(1, 3, 1)
        v1 = fi.observe(0, 3, v, ((1, other),))
        assert v1.observed_inputs() == frozenset({0, 1})

    def test_transitive_observation(self, fi):
        a = fi.initial_local(0, 3, 0)
        b = fi.initial_local(1, 3, 1)
        b1 = fi.observe(1, 3, b, ((2, fi.initial_local(2, 3, 2)),))
        a1 = fi.observe(0, 3, a, ((1, b1),))
        assert a1.observed_inputs() == frozenset({0, 1, 2})

    def test_heard_from(self, fi):
        v = fi.initial_local(0, 3, 0)
        v1 = fi.observe(0, 3, v, ((2, fi.initial_local(2, 3, 1)),))
        assert v1.heard_from() == frozenset({2})


class TestDecisionRules:
    def test_min_observed(self, fi):
        rule_fi = FullInformationProtocol(1, decide_min_observed, "min")
        v = rule_fi.initial_local(0, 3, 1)
        v1 = rule_fi.observe(0, 3, v, ((1, rule_fi.initial_local(1, 3, 0)),))
        assert v1.decided == 0

    def test_constant(self):
        rule_fi = FullInformationProtocol(1, decide_constant(9), "c9")
        v = rule_fi.initial_local(0, 3, 1)
        v1 = rule_fi.observe(0, 3, v, ())
        assert v1.decided == 9

    def test_own_input(self):
        rule_fi = FullInformationProtocol(1, decide_own_input, "own")
        v = rule_fi.initial_local(0, 3, 1)
        assert rule_fi.observe(0, 3, v, ()).decided == 1

    def test_decision_write_once(self):
        rule_fi = FullInformationProtocol(1, decide_own_input, "own")
        v = rule_fi.initial_local(0, 3, 1)
        v1 = rule_fi.observe(0, 3, v, ())
        v2 = rule_fi.observe(0, 3, v1, ())
        assert v2.decided == v1.decided


class TestMessageBatchHandling:
    def test_transition_takes_last_of_batch(self, fi):
        v = fi.initial_local(0, 3, 0)
        old = fi.initial_local(1, 3, 1)
        newer = fi.observe(1, 3, old, ())
        v1 = fi.transition(0, 3, v, {1: MessageBatch((old, newer))})
        (observation,) = v1.history
        assert observation == ((1, newer),)

    def test_names(self, fi):
        assert "FullInformation" in fi.name()
        named = FullInformationProtocol(1, decide_own_input, "own")
        assert "own" in named.name()
