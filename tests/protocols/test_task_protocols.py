"""Unit tests for the solvable-task protocols."""

import pytest

from repro.protocols.tasks import (
    DecideConstantProtocol,
    DecideOwnInput,
    EpsilonAgreementProtocol,
    KSetAgreementProtocol,
)


class TestTrivialProtocols:
    def test_own_input(self):
        p = DecideOwnInput()
        s = p.initial_local(1, 3, 7)
        assert p.decision(1, 3, s) == 7

    def test_constant(self):
        p = DecideConstantProtocol(3)
        s = p.initial_local(0, 3, 9)
        assert p.decision(0, 3, s) == 3
        assert "3" in p.name()


class TestEpsilonAgreement:
    def setup_method(self):
        self.p = EpsilonAgreementProtocol()

    def observe(self, s, pid, pairs):
        return self.p.observe(0, 3, s, ((pid, frozenset(pairs)),))

    def test_undecided_below_quorum(self):
        s = self.p.initial_local(0, 3, 0)
        assert self.p.decision(0, 3, s) is None

    def test_unanimous_zero_endpoint(self):
        s = self.p.initial_local(0, 3, 0)
        s = self.observe(s, 1, {(1, 0)})
        assert self.p.decision(0, 3, s) == 0

    def test_unanimous_one_endpoint(self):
        s = self.p.initial_local(0, 3, 1)
        s = self.observe(s, 2, {(2, 1)})
        assert self.p.decision(0, 3, s) == 2

    def test_mixed_midpoint(self):
        s = self.p.initial_local(0, 3, 0)
        s = self.observe(s, 1, {(1, 1)})
        assert self.p.decision(0, 3, s) == 1

    def test_window_property_exhaustive_quorums(self):
        """No pair of (n-1)-quorums over the same inputs can decide
        endpoints 0 and 2 simultaneously (n=3)."""
        from itertools import combinations, product

        for inputs in product((0, 1), repeat=3):
            pairs = set(enumerate(inputs))
            decisions = set()
            for quorum in combinations(pairs, 2):
                values = {v for _, v in quorum}
                if values == {0}:
                    decisions.add(0)
                elif values == {1}:
                    decisions.add(2)
                else:
                    decisions.add(1)
            assert max(decisions) - min(decisions) <= 1, inputs


class TestKSetAgreement:
    def test_k1_rejected(self):
        with pytest.raises(ValueError):
            KSetAgreementProtocol(1)

    def test_decides_min_of_quorum(self):
        p = KSetAgreementProtocol(2)
        s = p.initial_local(0, 3, 2)
        s = p.observe(0, 3, s, ((1, frozenset({(1, 1)})),))
        assert p.decision(0, 3, s) == 1

    def test_at_most_two_values_across_quorums(self):
        """Every (n-1)-quorum's min is the global min or second min."""
        from itertools import combinations, product

        for inputs in product((0, 1, 2), repeat=3):
            pairs = list(enumerate(inputs))
            mins = {
                min(v for _, v in quorum)
                for quorum in combinations(pairs, 2)
            }
            mins.add(min(inputs))  # full-view deciders
            assert len(mins) <= 2, inputs
