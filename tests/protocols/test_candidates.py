"""Unit tests for the candidate protocols (gossip skeleton + rules)."""

import pytest

from repro.protocols.candidates import (
    GossipState,
    QuorumDecide,
    WaitForAll,
    make_rule_candidate,
)
from repro.protocols.full_information import decide_min_observed


class TestGossipSkeleton:
    def test_initial_seen_own_pair(self):
        p = WaitForAll()
        s = p.initial_local(1, 3, 0)
        assert s.seen == frozenset({(1, 0)})
        assert p.decision(1, 3, s) is None

    def test_emit_is_seen_set(self):
        p = WaitForAll()
        s = p.initial_local(1, 3, 0)
        assert p.emit(1, 3, s) == s.seen

    def test_observe_merges_frozensets_only(self):
        p = WaitForAll()
        s = p.initial_local(0, 3, 0)
        s1 = p.observe(
            0, 3, s, ((1, frozenset({(1, 1)})), (2, "⊥"))
        )
        assert s1.seen == frozenset({(0, 0), (1, 1)})

    def test_outgoing_derived_from_emit(self):
        p = WaitForAll()
        s = p.initial_local(0, 3, 0)
        out = p.outgoing(0, 3, s)
        assert set(out) == {1, 2}
        assert out[1] == s.seen

    def test_write_value_derived_from_emit(self):
        p = WaitForAll()
        s = p.initial_local(0, 3, 0)
        assert p.write_value(0, 3, s) == s.seen


class TestQuorumDecide:
    def test_quorum_validated(self):
        with pytest.raises(ValueError):
            QuorumDecide(0)

    def test_decides_min_at_quorum(self):
        p = QuorumDecide(2)
        s = p.initial_local(0, 3, 1)
        s1 = p.observe(0, 3, s, ((2, frozenset({(2, 0)})),))
        assert p.decision(0, 3, s1) == 0

    def test_undecided_below_quorum(self):
        p = QuorumDecide(3)
        s = p.initial_local(0, 3, 1)
        s1 = p.observe(0, 3, s, ((2, frozenset({(2, 0)})),))
        assert p.decision(0, 3, s1) is None

    def test_decision_stable_after_more_observations(self):
        p = QuorumDecide(2)
        s = p.initial_local(0, 3, 1)
        s1 = p.observe(0, 3, s, ((2, frozenset({(2, 1)})),))
        assert s1.decided == 1
        s2 = p.observe(0, 3, s1, ((1, frozenset({(1, 0)})),))
        assert s2.decided == 1  # write-once, even seeing a smaller value

    def test_quorum_counts_distinct_pids(self):
        p = QuorumDecide(2)
        s = p.initial_local(0, 3, 1)
        # same pid twice is one pid
        s1 = p.observe(0, 3, s, ((0, frozenset({(0, 1)})),))
        assert p.decision(0, 3, s1) is None


class TestWaitForAll:
    def test_needs_everyone(self):
        p = WaitForAll()
        s = p.initial_local(0, 3, 1)
        s1 = p.observe(0, 3, s, ((1, frozenset({(1, 0)})),))
        assert p.decision(0, 3, s1) is None
        s2 = p.observe(0, 3, s1, ((2, frozenset({(2, 1)})),))
        assert p.decision(0, 3, s2) == 0

    def test_agreement_by_construction(self):
        # any two deciders saw the identical full pid set
        p = WaitForAll()
        full = frozenset({(0, 1), (1, 0), (2, 1)})
        a = GossipState(0, 1, full)
        b = GossipState(2, 1, full)
        assert p.maybe_decide(0, 3, a) == p.maybe_decide(2, 3, b)


class TestRuleCandidate:
    def test_factory(self):
        p = make_rule_candidate(2, decide_min_observed, "min")
        assert p.phases == 2
        assert "min" in p.name()
