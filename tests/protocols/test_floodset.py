"""Unit tests for FloodSet."""

import pytest

from repro.protocols.base import MessageBatch
from repro.protocols.floodset import FloodSet, FloodSetState


@pytest.fixture
def proto():
    return FloodSet(rounds=2)


class TestBasics:
    def test_initial(self, proto):
        s = proto.initial_local(0, 3, 1)
        assert s.known == frozenset({1})
        assert s.round == 0
        assert proto.decision(0, 3, s) is None

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            FloodSet(0)

    def test_outgoing_broadcast(self, proto):
        s = proto.initial_local(0, 3, 1)
        out = proto.outgoing(0, 3, s)
        assert set(out) == {1, 2}
        assert out[1] == frozenset({1})

    def test_transition_unions(self, proto):
        s = proto.initial_local(0, 3, 1)
        s1 = proto.transition(0, 3, s, {1: frozenset({0})})
        assert s1.known == frozenset({0, 1})
        assert s1.round == 1

    def test_decides_at_final_round(self, proto):
        s = proto.initial_local(0, 3, 1)
        s1 = proto.transition(0, 3, s, {1: frozenset({0})})
        s2 = proto.transition(0, 3, s1, {})
        assert proto.decision(0, 3, s2) == 0

    def test_freezes_after_decision(self, proto):
        s = proto.initial_local(0, 3, 1)
        s1 = proto.transition(0, 3, s, {})
        s2 = proto.transition(0, 3, s1, {})
        s3 = proto.transition(0, 3, s2, {2: frozenset({0})})
        assert s3 == s2
        assert proto.outgoing(0, 3, s2) == {}

    def test_batch_payloads_unioned(self, proto):
        s = proto.initial_local(0, 3, 1)
        batch = MessageBatch((frozenset({0}), frozenset({0, 1})))
        s1 = proto.transition(0, 3, s, {1: batch})
        assert s1.known == frozenset({0, 1})

    def test_custom_choose(self):
        proto = FloodSet(1, choose=max, choose_name="max")
        s = proto.initial_local(0, 3, 0)
        s1 = proto.transition(0, 3, s, {1: frozenset({1})})
        assert proto.decision(0, 3, s1) == 1
        assert "max" in proto.name()

    def test_state_hashable(self, proto):
        s = proto.initial_local(0, 3, 1)
        assert hash(s) == hash(FloodSetState(1, frozenset({1}), 0))
