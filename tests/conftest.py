"""Shared fixtures: small models, layerings and a synthetic toy system.

The toy system lets the core analyzers (valence, checker, bivalence) be
tested against hand-computed answers, independently of any real model;
the real fixtures bind the shipped protocols at n=3, the smallest size at
which all of the paper's phenomena appear (Section 6 assumes n >= 3).

This conftest also provides ``--global-timeout`` (or the
``REPRO_TEST_TIMEOUT`` env var): a SIGALRM-based per-test wall-clock
limit.  The serve integration tests drive real server subprocesses over
sockets; a wedged server must fail its test loudly instead of hanging
the whole CI job.  (pytest-timeout is not a dependency of this repo —
this is the standard-library equivalent for POSIX main-thread runs.)
"""

from __future__ import annotations

import signal

import pytest

from repro.core.state import GlobalState


def pytest_addoption(parser):
    parser.addoption(
        "--global-timeout",
        type=float,
        default=None,
        help=(
            "per-test wall-clock limit in seconds, enforced with "
            "SIGALRM (overrides REPRO_TEST_TIMEOUT; 0 disables)"
        ),
    )


def _timeout_seconds(config) -> float:
    import os

    opt = config.getoption("--global-timeout")
    if opt is not None:
        return opt
    raw = os.environ.get("REPRO_TEST_TIMEOUT", "")
    try:
        return float(raw) if raw else 0.0
    except ValueError:
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    limit = _timeout_seconds(item.config)
    if limit <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the --global-timeout of {limit:g}s"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


class ToySystem:
    """An explicit SuccessorSystem over string-labelled states.

    States are ``GlobalState(env="toy", locals=(name,) * n)`` for easy
    construction; transitions, decisions and failures are given as plain
    dicts.  Decisions map state-name -> {pid: value}; edges map
    state-name -> list of (action, state-name).
    """

    def __init__(
        self,
        edges: dict[str, list[tuple[str, str]]],
        decisions: dict[str, dict[int, object]] | None = None,
        failed: dict[str, frozenset[int]] | None = None,
        n: int = 2,
    ) -> None:
        self.n = n
        self._edges = edges
        self._decisions = decisions or {}
        self._failed = failed or {}

    def state(self, name: str) -> GlobalState:
        return GlobalState("toy", (name,) * self.n)

    def _name(self, state: GlobalState) -> str:
        return state.locals[0]

    def successors(self, state: GlobalState):
        return [
            (action, self.state(dest))
            for action, dest in self._edges.get(self._name(state), [])
        ]

    def failed_at(self, state: GlobalState) -> frozenset[int]:
        return self._failed.get(self._name(state), frozenset())

    def decisions(self, state: GlobalState) -> dict[int, object]:
        return dict(self._decisions.get(self._name(state), {}))

    def nonfaulty_under(self, action) -> frozenset[int]:
        return frozenset(range(self.n))

    def envs_agree_modulo(self, env_x, env_y, j: int) -> bool:
        return env_x == env_y

    # similarity helpers look for .model; the toy system is its own model
    @property
    def model(self):
        return self


@pytest.fixture
def toy_diamond():
    """x -> {a, b}; a -> da (decides 0), b -> db (decides 1).

    x is bivalent; a is 0-univalent; b is 1-univalent.
    """
    return ToySystem(
        edges={
            "x": [("l", "a"), ("r", "b")],
            "a": [("d", "da")],
            "b": [("d", "db")],
            "da": [("s", "da")],
            "db": [("s", "db")],
        },
        decisions={
            "da": {0: 0, 1: 0},
            "db": {0: 1, 1: 1},
        },
    )


@pytest.fixture
def toy_cycle_undecided():
    """x -> c1 -> c2 -> c1 (undecided cycle), plus x -> t (decides 0)."""
    return ToySystem(
        edges={
            "x": [("c", "c1"), ("t", "t")],
            "c1": [("f", "c2")],
            "c2": [("b", "c1")],
            "t": [("s", "t")],
        },
        decisions={"t": {0: 0, 1: 0}},
    )


@pytest.fixture
def mobile_floodset():
    """FloodSet(2) in the mobile model with its S_1 layering, n=3."""
    from repro.layerings.s1_mobile import S1MobileLayering
    from repro.models.mobile import MobileModel
    from repro.protocols.floodset import FloodSet

    model = MobileModel(FloodSet(2), 3)
    return S1MobileLayering(model)


@pytest.fixture
def st_floodset_fast():
    """FloodSet(t=1 round — too fast) under S^t, n=3, t=1."""
    from repro.analysis.sync_lower_bound import make_st_system
    from repro.protocols.floodset import FloodSet

    return make_st_system(FloodSet(1), 3, 1)


@pytest.fixture
def st_floodset_tight():
    """FloodSet(t+1=2 rounds — correct) under S^t, n=3, t=1."""
    from repro.analysis.sync_lower_bound import make_st_system
    from repro.protocols.floodset import FloodSet

    return make_st_system(FloodSet(2), 3, 1)


@pytest.fixture
def quorum_permutation():
    """QuorumDecide(2) under the permutation layering, n=3."""
    from repro.layerings.permutation import PermutationLayering
    from repro.models.async_mp import AsyncMessagePassingModel
    from repro.protocols.candidates import QuorumDecide

    return PermutationLayering(
        AsyncMessagePassingModel(QuorumDecide(2), 3)
    )


@pytest.fixture
def quorum_synchronic_rw():
    """QuorumDecide(2) under S^rw, n=3."""
    from repro.layerings.synchronic_rw import SynchronicRWLayering
    from repro.models.shared_memory import SharedMemoryModel
    from repro.protocols.candidates import QuorumDecide

    return SynchronicRWLayering(SharedMemoryModel(QuorumDecide(2), 3))
