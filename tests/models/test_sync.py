"""Unit tests for the t-resilient synchronous model (Section 6)."""

import pytest

from repro.models.sync import NO_FAILURE, SynchronousModel, fail_action
from repro.protocols.floodset import FloodSet


@pytest.fixture
def model():
    return SynchronousModel(FloodSet(2), 3, 1)


@pytest.fixture
def model_t2():
    return SynchronousModel(FloodSet(3), 4, 2)


class TestConstruction:
    def test_t_range_enforced(self):
        with pytest.raises(ValueError):
            SynchronousModel(FloodSet(2), 3, 0)
        with pytest.raises(ValueError):
            SynchronousModel(FloodSet(2), 3, 3)

    def test_initial_state_env(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.failed_at(state) == frozenset()

    def test_wrong_env_rejected(self, model):
        from repro.core.state import GlobalState

        with pytest.raises(ValueError):
            model.failed_at(GlobalState("bogus", ("a", "b", "c")))


class TestActions:
    def test_action_count_no_failures(self, model):
        state = model.initial_state((0, 1, 1))
        # 1 (no failure) + 3 processes * (2^2 - 1) blocked subsets = 10
        assert len(model.actions(state)) == 10

    def test_clean_crash_restriction(self):
        model = SynchronousModel(
            FloodSet(2), 3, 1, clean_crashes_only=True
        )
        state = model.initial_state((0, 1, 1))
        # 1 + 3 (each process crashes cleanly) = 4
        assert len(model.actions(state)) == 4

    def test_budget_exhausted_only_no_failure(self, model):
        state = model.initial_state((0, 1, 1))
        failed = model.apply(state, fail_action((0, frozenset({1, 2}))))
        assert model.actions(failed) == [NO_FAILURE]

    def test_two_new_failures_when_t2(self, model_t2):
        state = model_t2.initial_state((0, 1, 1, 0))
        actions = model_t2.actions(state)
        doubles = [a for a in actions if len(a) == 2]
        assert doubles  # simultaneous failures exist in the full model


class TestApply:
    def test_silencing_forever(self, model):
        state = model.initial_state((0, 1, 1))
        failed = model.apply(state, fail_action((0, frozenset({1}))))
        assert model.failed_at(failed) == frozenset({0})
        # next round: 0's messages dropped everywhere even with NO_FAILURE
        nxt = model.apply(failed, NO_FAILURE)
        # process 2 heard 0 in round 1 (only 1 was blocked), then nobody
        # hears 0 directly in round 2 — but 2 relays 0's value.
        assert 0 in nxt.local(1).known  # relayed via 2

    def test_refailing_rejected(self, model):
        state = model.initial_state((0, 1, 1))
        failed = model.apply(state, fail_action((0, frozenset({1}))))
        with pytest.raises(ValueError):
            model.apply(failed, fail_action((0, frozenset({2}))))

    def test_budget_exceeded_rejected(self, model):
        state = model.initial_state((0, 1, 1))
        failed = model.apply(state, fail_action((0, frozenset({1}))))
        with pytest.raises(ValueError):
            model.apply(failed, fail_action((1, frozenset({2}))))

    def test_failed_process_still_receives(self, model):
        state = model.initial_state((0, 1, 1))
        failed = model.apply(state, fail_action((0, frozenset({1, 2}))))
        # 0 is silenced but receives: it learns 1's value
        assert failed.local(0).known == frozenset({0, 1})

    def test_omission_subset_delivery(self, model):
        state = model.initial_state((0, 1, 1))
        nxt = model.apply(state, fail_action((0, frozenset({1}))))
        assert nxt.local(1).known == frozenset({1})
        assert nxt.local(2).known == frozenset({0, 1})


class TestFloodSetCorrectness:
    def test_clean_run_unanimity(self, model):
        state = model.initial_state((0, 1, 1))
        for _ in range(2):
            state = model.apply(state, NO_FAILURE)
        assert model.decisions(state) == {0: 0, 1: 0, 2: 0}

    def test_decisions_respect_failures(self, model):
        # classic scenario: 0 fails round 1 reaching only process 2
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, fail_action((0, frozenset({1}))))
        state = model.apply(state, NO_FAILURE)
        decisions = model.decisions(state)
        # 2 rounds = t+1: all non-failed agree (2 relayed the 0)
        nonfailed = {i: v for i, v in decisions.items() if i != 0}
        assert len(set(nonfailed.values())) == 1


class TestNonfaultyUnder:
    def test_new_failures_excluded(self, model):
        action = fail_action((1, frozenset({0})))
        assert model.nonfaulty_under(action) == frozenset({0, 2})

    def test_no_failure_keeps_all(self, model):
        assert model.nonfaulty_under(NO_FAILURE) == frozenset({0, 1, 2})
