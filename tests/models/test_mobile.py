"""Unit tests for the mobile-failure model M^mf."""

import pytest

from repro.models.mobile import ENV_MF, MobileModel, omit_action, prefix_action
from repro.protocols.floodset import FloodSet
from repro.protocols.full_information import FullInformationProtocol


@pytest.fixture
def model():
    return MobileModel(FloodSet(3), 3)


class TestBasics:
    def test_initial_state(self, model):
        state = model.initial_state((0, 1, 1))
        assert state.env == ENV_MF
        assert state.n == 3
        assert state.local(0).known == frozenset({0})

    def test_initial_state_wrong_arity(self, model):
        with pytest.raises(ValueError):
            model.initial_state((0, 1))

    def test_n_below_two_rejected(self):
        with pytest.raises(ValueError):
            MobileModel(FloodSet(1), 1)

    def test_action_count(self, model):
        state = model.initial_state((0, 1, 1))
        # n * 2^n = 3 * 8 = 24 labelled actions (duplicates collapse at
        # the state level: G and G \ {j} act identically)
        assert len(model.actions(state)) == 24

    def test_env_constant(self, model):
        state = model.initial_state((0, 1, 1))
        nxt = model.apply(state, omit_action(0, {1, 2}))
        assert nxt.env == ENV_MF


class TestDelivery:
    def test_failure_free_round_floods(self, model):
        state = model.initial_state((0, 1, 1))
        nxt = model.apply(state, omit_action(0, ()))
        for i in range(3):
            assert nxt.local(i).known == frozenset({0, 1})

    def test_omission_blocks_target(self, model):
        state = model.initial_state((0, 1, 1))
        nxt = model.apply(state, omit_action(0, {1}))
        # process 1 misses 0's message: knows only 1 (from itself and 2)
        assert nxt.local(1).known == frozenset({1})
        # process 2 still hears 0
        assert nxt.local(2).known == frozenset({0, 1})

    def test_prefix_action_targets_prefix(self, model):
        state = model.initial_state((0, 1, 1))
        assert prefix_action(2, 2) == ("omit", 2, frozenset({0, 1}))
        assert prefix_action(1, 0) == ("omit", 1, frozenset())

    def test_prefix_action_negative_rejected(self):
        with pytest.raises(ValueError):
            prefix_action(0, -1)

    def test_zero_prefix_identical_for_all_j(self, model):
        state = model.initial_state((0, 1, 1))
        results = {
            model.apply(state, prefix_action(j, 0)) for j in range(3)
        }
        assert len(results) == 1

    def test_self_omission_is_noop(self, model):
        state = model.initial_state((0, 1, 1))
        a = model.apply(state, omit_action(0, {0}))
        b = model.apply(state, omit_action(0, ()))
        assert a == b

    def test_determinism(self, model):
        state = model.initial_state((1, 0, 1))
        action = omit_action(1, {0, 2})
        assert model.apply(state, action) == model.apply(state, action)


class TestFailureSemantics:
    def test_no_finite_failure(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.failed_at(state) == frozenset()
        nxt = model.apply(state, omit_action(0, {1, 2}))
        assert model.failed_at(nxt) == frozenset()

    def test_nonfaulty_under_real_omission(self, model):
        assert model.nonfaulty_under(omit_action(0, {1, 2})) == frozenset(
            {1, 2}
        )

    def test_nonfaulty_under_noop(self, model):
        assert model.nonfaulty_under(omit_action(0, ())) == frozenset(
            {0, 1, 2}
        )
        assert model.nonfaulty_under(omit_action(0, {0})) == frozenset(
            {0, 1, 2}
        )

    def test_decisions_extracted(self, model):
        state = model.initial_state((0, 1, 1))
        for _ in range(3):
            state = model.apply(state, omit_action(0, ()))
        decisions = model.decisions(state)
        assert decisions == {0: 0, 1: 0, 2: 0}


class TestWithFullInformation:
    def test_views_grow_and_freeze(self):
        fi = FullInformationProtocol(phases=2)
        model = MobileModel(fi, 3)
        state = model.initial_state((0, 1, 1))
        s1 = model.apply(state, omit_action(0, ()))
        assert s1.local(0).phase == 1
        s2 = model.apply(s1, omit_action(0, ()))
        assert s2.local(0).phase == 2
        s3 = model.apply(s2, omit_action(0, ()))
        assert s3 == s2  # frozen: finite state space
