"""Unit tests for the asynchronous message-passing model."""

import pytest

from repro.models.async_mp import (
    AsyncMessagePassingModel,
    NO_OUTBOX,
    flush_action,
    recv_action,
    stage_action,
)
from repro.protocols.candidates import QuorumDecide, WaitForAll
from repro.protocols.floodset import FloodSet


@pytest.fixture
def model():
    return AsyncMessagePassingModel(QuorumDecide(2), 3)


class TestPrimitives:
    def test_initial_state(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.bag(state) == {}
        assert model.at_phase_boundary(state)

    def test_stage_parks_outbox(self, model):
        state = model.initial_state((0, 1, 1))
        staged = model.apply(state, stage_action(0))
        assert model.outbox(staged, 0) is not NO_OUTBOX
        assert model.bag(staged) == {}  # nothing sent yet

    def test_double_stage_rejected(self, model):
        state = model.initial_state((0, 1, 1))
        staged = model.apply(state, stage_action(0))
        with pytest.raises(ValueError):
            model.apply(staged, stage_action(0))

    def test_flush_requires_stage(self, model):
        state = model.initial_state((0, 1, 1))
        with pytest.raises(ValueError):
            model.apply(state, flush_action(0))

    def test_flush_fills_channels(self, model):
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, stage_action(0))
        state = model.apply(state, flush_action(0))
        bag = model.bag(state)
        assert set(bag) == {(0, 1), (0, 2)}

    def test_recv_consumes_only_own_channels(self, model):
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, stage_action(0))
        state = model.apply(state, flush_action(0))
        state = model.apply(state, recv_action(1))
        assert set(model.bag(state)) == {(0, 2)}
        assert (0, 0) in model.proto_local(state, 1).seen

    def test_empty_recv_is_legal(self, model):
        state = model.initial_state((0, 1, 1))
        after = model.apply(state, recv_action(0))
        assert model.bag(after) == {}

    def test_actions_reflect_outbox(self, model):
        state = model.initial_state((0, 1, 1))
        assert stage_action(0) in model.actions(state)
        staged = model.apply(state, stage_action(0))
        actions = model.actions(staged)
        assert flush_action(0) in actions
        assert stage_action(0) not in actions


class TestStageContentSemantics:
    def test_stage_content_frozen_at_stage_time(self, model):
        """Messages carry the *stage-time* local state, even if the
        process receives before flushing (the immediate-snapshot rule)."""
        state = model.initial_state((0, 1, 1))
        # p1 sends its initial seen-set into the bag
        state = model.apply(state, stage_action(1))
        state = model.apply(state, flush_action(1))
        # p0 stages FIRST, then receives p1's message, then flushes
        state = model.apply(state, stage_action(0))
        state = model.apply(state, recv_action(0))
        state = model.apply(state, flush_action(0))
        # p0's own local now knows p1's value...
        assert (1, 1) in model.proto_local(state, 0).seen
        # ...but the message p0 flushed carries its STAGE-time content.
        payload = model.bag(state)[(0, 2)][0]
        assert payload == frozenset({(0, 0)})

    def test_local_phase_order_deliver_then_send_content(self, model):
        """local_phase: stage (content), recv, flush — the delivered
        messages influence the *next* phase's content."""
        state = model.initial_state((0, 1, 1))
        state = model.local_phase(state, 1)
        state = model.local_phase(state, 0)  # p0 hears p1
        # p0's NEXT phase forwards the merged set
        state = model.local_phase(state, 0)
        state = model.apply(state, recv_action(2))
        seen = model.proto_local(state, 2).seen
        assert (1, 1) in seen


class TestChannelCompression:
    def test_consecutive_duplicates_collapse(self):
        model = AsyncMessagePassingModel(WaitForAll(), 3)
        state = model.initial_state((0, 1, 1))
        # p0's seen-set never changes while nobody answers: repeated
        # phases send identical payloads, which must not grow the channel.
        for _ in range(4):
            state = model.local_phase(state, 0)
        bag = model.bag(state)
        assert len(bag[(0, 1)]) == 1
        assert len(bag[(0, 2)]) == 1

    def test_distinct_payloads_preserved(self, model):
        state = model.initial_state((0, 1, 1))
        state = model.local_phase(state, 1)  # p1 sends {1:1}
        state = model.local_phase(state, 0)  # p0 hears, sends {0,1} merged
        state = model.local_phase(state, 0)  # p0's set unchanged: collapsed
        state = model.local_phase(state, 1)  # p1 still unchanged? it heard 0
        bag = model.bag(state)
        # channel 0 -> 2 holds p0's two *distinct* payloads
        assert len(bag[(0, 2)]) == 2


class TestMisc:
    def test_self_message_rejected(self):
        class Selfish(FloodSet):
            def outgoing(self, i, n, local):
                return {i: local.known}

        model = AsyncMessagePassingModel(Selfish(2), 3)
        state = model.initial_state((0, 1, 1))
        with pytest.raises(ValueError):
            model.apply(state, stage_action(0))

    def test_no_finite_failure(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.failed_at(state) == frozenset()

    def test_nonfaulty_under_primitive(self, model):
        assert model.nonfaulty_under(recv_action(2)) == frozenset({2})

    def test_pending_for(self, model):
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, stage_action(0))
        state = model.apply(state, flush_action(0))
        pending = model.pending_for(state, 1)
        assert list(pending) == [0]
