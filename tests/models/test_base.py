"""Unit tests for the model base class and delivery helper."""

import pytest

from repro.models.base import Model, deliver_round
from repro.models.mobile import MobileModel
from repro.protocols.floodset import FloodSet


class TestDeliverRound:
    def test_basic_delivery(self):
        outgoing = {0: {1: "a", 2: "b"}, 1: {0: "c"}}
        received = deliver_round(3, outgoing, dropped=lambda s, d: False)
        assert received[1] == {0: "a"}
        assert received[2] == {0: "b"}
        assert received[0] == {1: "c"}

    def test_drops_applied(self):
        outgoing = {0: {1: "a", 2: "b"}}
        received = deliver_round(
            3, outgoing, dropped=lambda s, d: d == 1
        )
        assert received[1] == {}
        assert received[2] == {0: "b"}

    def test_self_message_rejected(self):
        with pytest.raises(ValueError, match="self-message"):
            deliver_round(2, {0: {0: "x"}}, dropped=lambda s, d: False)

    def test_unknown_destination_rejected(self):
        with pytest.raises(ValueError, match="unknown destination"):
            deliver_round(2, {0: {5: "x"}}, dropped=lambda s, d: False)

    def test_empty_round(self):
        received = deliver_round(2, {}, dropped=lambda s, d: False)
        assert received == {0: {}, 1: {}}


class TestModelDefaults:
    def test_initial_states_enumerates_domain(self):
        model = MobileModel(FloodSet(2), 2)
        states = model.initial_states((0, 1))
        assert len(states) == 4
        assert len(set(states)) == 4

    def test_initial_states_custom_domain(self):
        model = MobileModel(FloodSet(2), 2)
        states = model.initial_states(("a", "b", "c"))
        assert len(states) == 9

    def test_envs_agree_default_is_equality(self):
        model = MobileModel(FloodSet(2), 2)
        assert model.envs_agree_modulo("x", "x", 0)
        assert not model.envs_agree_modulo("x", "y", 0)

    def test_n_lower_bound(self):
        with pytest.raises(ValueError, match="n >= 2"):
            MobileModel(FloodSet(2), 1)

    def test_successors_pairs(self):
        model = MobileModel(FloodSet(2), 2)
        state = model.initial_state((0, 1))
        succs = model.successors(state)
        assert len(succs) == len(model.actions(state))
        for action, child in succs:
            assert model.apply(state, action) == child

    def test_nonfaulty_under_default(self):
        class Dummy(Model):
            def initial_state(self, inputs):
                raise NotImplementedError

            def actions(self, state):
                return []

            def apply(self, state, action):
                raise NotImplementedError

            def failed_at(self, state):
                return frozenset()

            def decisions(self, state):
                return {}

        assert Dummy(3).nonfaulty_under("anything") == frozenset({0, 1, 2})
