"""Unit tests for the snapshot shared-memory model."""

import pytest

from repro.models.snapshot import (
    BOT,
    SnapshotMemoryModel,
    scan_action,
    update_action,
)
from repro.protocols.candidates import QuorumDecide


@pytest.fixture
def model():
    return SnapshotMemoryModel(QuorumDecide(2), 3)


def run_phase(model, state, i):
    state = model.apply(state, update_action(i))
    return model.apply(state, scan_action(i))


class TestBasics:
    def test_initial_cells_bot(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.cells(state) == (BOT, BOT, BOT)
        assert model.at_phase_boundary(state)

    def test_actions_track_pending_op(self, model):
        state = model.initial_state((0, 1, 1))
        assert update_action(0) in model.actions(state)
        after = model.apply(state, update_action(0))
        assert scan_action(0) in model.actions(after)
        assert update_action(0) not in model.actions(after)

    def test_wrong_op_order_rejected(self, model):
        state = model.initial_state((0, 1, 1))
        with pytest.raises(ValueError):
            model.apply(state, scan_action(0))

    def test_wrong_env_rejected(self, model):
        from repro.core.state import GlobalState

        with pytest.raises(ValueError):
            model.cells(GlobalState("bogus", ("x",) * 3))


class TestAtomicity:
    def test_scan_sees_all_cells_at_once(self, model):
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, update_action(0))
        state = model.apply(state, update_action(1))
        state = model.apply(state, scan_action(0))
        seen = model.proto_local(state, 0).seen
        # one atomic scan caught both fresh updates
        assert (1, 1) in seen and (0, 0) in seen

    def test_block_members_see_each_other(self, model):
        """The immediate-snapshot signature: in an update-update-scan-scan
        block, BOTH processes see both updates (contrast with the
        permutation layering's exclusive pair)."""
        state = model.initial_state((0, 1, 1))
        state = model.apply(state, update_action(0))
        state = model.apply(state, update_action(1))
        state = model.apply(state, scan_action(0))
        state = model.apply(state, scan_action(1))
        assert (1, 1) in model.proto_local(state, 0).seen
        assert (0, 0) in model.proto_local(state, 1).seen

    def test_earlier_scan_misses_later_update(self, model):
        state = model.initial_state((0, 1, 1))
        state = run_phase(model, state, 0)
        assert (1, 1) not in model.proto_local(state, 0).seen

    def test_cells_single_writer(self, model):
        state = model.initial_state((0, 1, 1))
        state = run_phase(model, state, 2)
        cells = model.cells(state)
        assert cells[0] == BOT and cells[1] == BOT and cells[2] != BOT


class TestFailureSemantics:
    def test_no_finite_failure(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.failed_at(state) == frozenset()

    def test_nonfaulty_under_primitive(self, model):
        assert model.nonfaulty_under(scan_action(1)) == frozenset({1})

    def test_decisions(self, model):
        state = model.initial_state((0, 1, 1))
        state = run_phase(model, state, 1)
        state = run_phase(model, state, 0)
        assert model.decisions(state).get(0) == 0
