"""Unit tests for the shared-memory model M^rw."""

import pytest

from repro.models.shared_memory import BOT, SharedMemoryModel, step_action
from repro.protocols.candidates import QuorumDecide
from repro.protocols.full_information import FullInformationProtocol


@pytest.fixture
def model():
    return SharedMemoryModel(QuorumDecide(2), 3)


def run_phase(model, state, i):
    """Drive process i through one complete local phase (n+1 steps)."""
    for _ in range(model.n + 1):
        state = model.apply(state, step_action(i))
    return state


class TestBasics:
    def test_initial_registers_bot(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.registers(state) == (BOT, BOT, BOT)
        assert model.at_phase_boundary(state)

    def test_actions_always_all_processes(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.actions(state) == [
            step_action(0),
            step_action(1),
            step_action(2),
        ]

    def test_wrong_env_rejected(self, model):
        from repro.core.state import GlobalState

        with pytest.raises(ValueError):
            model.registers(GlobalState("bogus", ("x",) * 3))

    def test_unknown_action_rejected(self, model):
        state = model.initial_state((0, 1, 1))
        with pytest.raises(ValueError):
            model.apply(state, ("dance", 0))


class TestPhaseMachine:
    def test_write_then_reads(self, model):
        state = model.initial_state((0, 1, 1))
        after_write = model.apply(state, step_action(0))
        # register 0 now holds 0's emitted seen-set
        assert model.registers(after_write)[0] == frozenset({(0, 0)})
        assert model.stage(after_write, 0) == 1
        assert not model.at_phase_boundary(after_write)

    def test_phase_completes_and_resets(self, model):
        state = model.initial_state((0, 1, 1))
        after = run_phase(model, state, 0)
        assert model.stage(after, 0) == 0
        assert model.at_phase_boundary(after)

    def test_reads_observe_prior_writes(self, model):
        state = model.initial_state((0, 1, 1))
        state = run_phase(model, state, 1)  # p1 writes, reads (sees only own)
        state = run_phase(model, state, 0)  # p0 now sees p1's register
        seen = model.proto_local(state, 0).seen
        assert (1, 1) in seen

    def test_interleaved_reads_can_miss_late_writes(self, model):
        state = model.initial_state((0, 1, 1))
        # p0 writes and reads register 0 before p1 writes
        state = model.apply(state, step_action(0))  # p0 write
        state = model.apply(state, step_action(0))  # p0 reads reg 0
        state = model.apply(state, step_action(0))  # p0 reads reg 1 (BOT)
        state = model.apply(state, step_action(1))  # p1 writes now
        state = model.apply(state, step_action(0))  # p0 reads reg 2 (BOT)
        seen = model.proto_local(state, 0).seen
        assert (1, 1) not in seen  # missed p1's late write

    def test_registers_single_writer(self, model):
        state = model.initial_state((0, 1, 1))
        state = run_phase(model, state, 2)
        regs = model.registers(state)
        assert regs[0] == BOT and regs[1] == BOT
        assert regs[2] != BOT


class TestFailureSemantics:
    def test_no_finite_failure(self, model):
        state = model.initial_state((0, 1, 1))
        assert model.failed_at(state) == frozenset()

    def test_nonfaulty_under_single_step(self, model):
        assert model.nonfaulty_under(step_action(1)) == frozenset({1})


class TestDecisions:
    def test_quorum_decides_after_seeing_two(self, model):
        state = model.initial_state((0, 1, 1))
        state = run_phase(model, state, 1)
        state = run_phase(model, state, 0)
        decisions = model.decisions(state)
        assert decisions.get(0) == 0  # saw {0, 1}, min = 0

    def test_full_information_protocol_in_rw(self):
        fi = FullInformationProtocol(phases=2)
        model = SharedMemoryModel(fi, 3)
        state = model.initial_state((0, 1, 1))
        state = run_phase(model, state, 0)
        view = model.proto_local(state, 0)
        assert view.phase == 1
        # the observation records all three registers, including BOTs
        sources = [src for src, _ in view.history[0]]
        assert sources == [0, 1, 2]
