"""Parallel campaign drivers: identical tables, incremental checkpoints.

The analysis drivers (``refute_candidate``, ``defeat_fast_candidates``,
``verify_tight_protocols``, ``solvability_matrix``) and the frontier-
partitioned explorer must produce results identical to their sequential
selves under ``workers=N``, record campaign progress as workers finish,
and surface the flags end-to-end through the CLI.
"""

import pytest

from repro.analysis.impossibility import refute_candidate
from repro.analysis.solvability_experiments import solvability_matrix
from repro.analysis.sync_lower_bound import (
    defeat_fast_candidates,
    verify_tight_protocols,
)
from repro.cli import EXIT_INCONCLUSIVE, EXIT_OK, main
from repro.core.exploration import reachable_states, reachable_states_parallel
from repro.core.state import GlobalState
from repro.core.valence import ExplorationLimitExceeded
from repro.protocols.candidates import QuorumDecide
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.resilience.pool import PoolConfig


class _LookalikeRaiser:
    """A picklable system whose expansion fails with an error message
    that *mentions* ExplorationLimitExceeded without being one."""

    n = 2

    def successors(self, state):
        raise ValueError(
            "not a budget trip, despite saying ExplorationLimitExceeded"
        )

    def failed_at(self, state):
        return frozenset()

    def decisions(self, state):
        return {}


def _rows_equal(parallel_rows, sequential_rows):
    assert len(parallel_rows) == len(sequential_rows)
    for par, seq in zip(parallel_rows, sequential_rows):
        assert par.protocol_name == seq.protocol_name
        assert par.report.verdict is seq.report.verdict
        assert par.report.inputs == seq.report.inputs
        assert par.report.states_explored == seq.report.states_explored


class TestDriverParity:
    def test_defeat_fast_candidates(self):
        _rows_equal(
            defeat_fast_candidates(3, 1, workers=2),
            defeat_fast_candidates(3, 1),
        )

    def test_verify_tight_protocols(self):
        sequential = verify_tight_protocols(3, 1, include_full_model=False)
        parallel = verify_tight_protocols(
            3, 1, include_full_model=False, workers=2
        )
        _rows_equal(parallel, sequential)
        assert all(r.report.satisfied for r in parallel)

    def test_refute_candidate(self):
        sequential = refute_candidate(QuorumDecide(quorum=2), 3)
        parallel = refute_candidate(QuorumDecide(quorum=2), 3, workers=3)
        assert len(parallel) == len(sequential)
        for par, seq in zip(parallel, sequential):
            assert par.model_name == seq.model_name
            assert par.verdict is seq.verdict
            assert par.report.states_explored == seq.report.states_explored

    def test_solvability_matrix(self):
        kwargs = dict(tasks=["identity", "constant"], max_states=50_000)
        sequential = solvability_matrix(**kwargs)
        parallel = solvability_matrix(workers=2, **kwargs)
        assert list(parallel) == list(sequential)
        for name in sequential:
            assert parallel[name].row == sequential[name].row
            assert parallel[name].error is None
            assert (
                parallel[name].matches_expectation
                == sequential[name].matches_expectation
            )


class TestCampaignIntegration:
    def test_parallel_campaign_records_completed_units(self):
        campaign = CampaignCheckpoint()
        rows = defeat_fast_candidates(3, 1, campaign=campaign, workers=2)
        assert len(campaign.completed) == len(rows)
        for row in rows:
            key = f"defeat:{row.protocol_name}:n3:t1"
            assert campaign.report_for(key) is not None

    def test_parallel_campaign_reuses_cached_units(self):
        campaign = CampaignCheckpoint()
        first = defeat_fast_candidates(3, 1, campaign=campaign, workers=2)
        second = defeat_fast_candidates(3, 1, campaign=campaign, workers=2)
        _rows_equal(second, first)
        # The cached reports are the same objects — nothing re-ran.
        for f, s in zip(first, second):
            assert s.report is f.report

    def test_on_unit_fires_per_fresh_unit(self):
        fired = []
        campaign = CampaignCheckpoint()
        rows = defeat_fast_candidates(
            3,
            1,
            campaign=campaign,
            workers=2,
            on_unit=lambda key, report: fired.append(key),
        )
        assert sorted(fired) == sorted(
            f"defeat:{row.protocol_name}:n3:t1" for row in rows
        )


class TestParallelExploration:
    def test_min_depth_merge_equals_sequential(self, st_floodset_tight):
        roots = st_floodset_tight.model.initial_states((0, 1))
        sequential = reachable_states(st_floodset_tight, roots)
        parallel = reachable_states_parallel(
            st_floodset_tight, roots, workers=3
        )
        assert parallel == sequential

    def test_single_root_degrades_to_sequential(self, st_floodset_tight):
        roots = st_floodset_tight.model.initial_states((0, 1))[:1]
        assert reachable_states_parallel(
            st_floodset_tight, roots, workers=4
        ) == reachable_states(st_floodset_tight, roots)

    def test_max_depth_respected(self, st_floodset_tight):
        roots = st_floodset_tight.model.initial_states((0, 1))
        sequential = reachable_states(st_floodset_tight, roots, max_depth=1)
        parallel = reachable_states_parallel(
            st_floodset_tight, roots, max_depth=1, workers=2
        )
        assert parallel == sequential


class TestQuarantineDispatch:
    """The supervisor tells budget trips from genuine faults by the
    structured exception category the pool records — not by searching
    the quarantine cause text (regression: any error message mentioning
    ``ExplorationLimitExceeded`` used to masquerade as a budget trip)."""

    POOL = PoolConfig(workers=2, max_retries=0, retry_backoff=0.01)

    def test_shard_budget_trip_raises_limit_exceeded(self, st_floodset_tight):
        roots = st_floodset_tight.model.initial_states((0, 1))
        with pytest.raises(ExplorationLimitExceeded, match="shard"):
            reachable_states_parallel(
                st_floodset_tight,
                roots,
                max_states=Budget(max_states=2),
                workers=2,
                pool=self.POOL,
            )

    def test_lookalike_error_is_not_a_budget_trip(self):
        system = _LookalikeRaiser()
        roots = [GlobalState("toy", ("a", "a")), GlobalState("toy", ("b", "b"))]
        with pytest.raises(RuntimeError, match="quarantined"):
            reachable_states_parallel(
                system, roots, workers=2, pool=self.POOL
            )


class TestCLIWorkers:
    def test_lower_bound_with_workers(self, capsys):
        code = main(
            ["lower-bound", "--n", "3", "--t", "1", "--workers", "2"]
        )
        assert code == EXIT_OK
        assert "crossover holds" in capsys.readouterr().out

    def test_workers_output_matches_sequential(self, capsys):
        main(["lower-bound", "--n", "3", "--t", "1"])
        sequential_out = capsys.readouterr().out
        main(["lower-bound", "--n", "3", "--t", "1", "--workers", "2"])
        parallel_out = capsys.readouterr().out
        assert parallel_out == sequential_out

    def test_worker_flags_parse_with_knobs(self, capsys):
        code = main(
            [
                "impossibility",
                "--protocol",
                "quorum",
                "--workers",
                "2",
                "--unit-timeout",
                "60",
                "--max-retries",
                "2",
                "--max-states",
                "20000",
            ]
        )
        assert code == EXIT_OK

    def test_corrupted_resume_exits_2_with_diagnostic(
        self, tmp_path, capsys
    ):
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(b"\x80\x05 definitely not a full pickle")
        code = main(["lower-bound", "--resume", str(path)])
        assert code == EXIT_INCONCLUSIVE
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "corrupted checkpoint" in err
        assert "Traceback" not in err

    def test_parallel_run_writes_checkpoint_incrementally(
        self, tmp_path, capsys
    ):
        """With --checkpoint, the autosave hook persists units as they
        finish — the file exists and resumes cleanly afterwards."""
        path = tmp_path / "run.ckpt"
        code = main(
            [
                "lower-bound",
                "--n",
                "3",
                "--t",
                "1",
                "--workers",
                "2",
                "--checkpoint",
                str(path),
            ]
        )
        assert code == EXIT_OK
        assert path.exists()
        capsys.readouterr()
        code = main(["lower-bound", "--resume", str(path), "--workers", "2"])
        assert code == EXIT_OK
        assert "crossover holds" in capsys.readouterr().out
