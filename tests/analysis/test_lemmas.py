"""Tests for the executable lemma checks across models."""

import pytest

from repro.analysis.lemmas import (
    lemma_3_1,
    lemma_3_2,
    lemma_3_6_report,
    lemma_4_1,
    lemma_5_1,
    lemma_5_3,
)
from repro.core.valence import ValenceAnalyzer
from repro.layerings.s1_mobile import S1MobileLayering, similarity_chain
from repro.layerings.synchronic_mp import SynchronicMPLayering
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.mobile import MobileModel
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.candidates import QuorumDecide
from repro.protocols.floodset import FloodSet


@pytest.fixture
def mobile_system():
    layering = S1MobileLayering(MobileModel(FloodSet(2), 3))
    return layering, ValenceAnalyzer(layering)


class TestLemma31And32:
    def test_3_1_on_bivalent_initial(self, mobile_system):
        layering, analyzer = mobile_system
        state = layering.model.initial_state((0, 1, 1))
        report = lemma_3_1(layering, analyzer, state, t=1)
        assert report.holds
        assert len(report.witnesses["undecided"]) >= 2

    def test_3_1_vacuous_on_univalent(self, mobile_system):
        layering, analyzer = mobile_system
        state = layering.model.initial_state((0, 0, 0))
        report = lemma_3_1(layering, analyzer, state, t=1)
        assert report.holds and "vacuous" in report.detail

    def test_3_2_no_decided_at_bivalent(self, mobile_system):
        layering, analyzer = mobile_system
        state = layering.model.initial_state((0, 1, 1))
        report = lemma_3_2(layering, analyzer, state)
        assert report.holds

    def test_3_2_checks_all_reachable_for_agreeing_protocol(self):
        """Lemma 3.2 presumes agreement — check it on WaitForAll, which
        satisfies agreement and validity (sacrificing decision)."""
        from repro.core.exploration import reachable_states
        from repro.protocols.candidates import WaitForAll

        layering = S1MobileLayering(MobileModel(WaitForAll(), 3))
        analyzer = ValenceAnalyzer(layering, max_states=300_000)
        initial = layering.model.initial_state((0, 1, 1))
        for state in reachable_states(layering, [initial], max_depth=2):
            assert lemma_3_2(layering, analyzer, state).holds

    def test_3_2_premise_matters(self, mobile_system):
        """FloodSet(2) under unbounded mobile failures violates agreement,
        so Lemma 3.2's conclusion genuinely fails on a reachable state —
        documenting that the agreement premise is load-bearing."""
        from repro.core.exploration import reachable_states

        layering, analyzer = mobile_system
        initial = layering.model.initial_state((0, 1, 1))
        reports = [
            lemma_3_2(layering, analyzer, state)
            for state in reachable_states(layering, [initial], max_depth=2)
        ]
        assert any(not r.holds for r in reports)


class TestLemma36:
    def test_mobile(self, mobile_system):
        layering, analyzer = mobile_system
        initials = layering.model.initial_states((0, 1))
        report = lemma_3_6_report(layering, analyzer, initials)
        assert report.holds
        assert report.witnesses["bivalent_initial"] is not None

    def test_shared_memory(self):
        layering = SynchronicRWLayering(
            SharedMemoryModel(QuorumDecide(2), 3)
        )
        analyzer = ValenceAnalyzer(layering)
        initials = layering.model.initial_states((0, 1))
        report = lemma_3_6_report(layering, analyzer, initials)
        assert report.holds


class TestLemma41:
    def test_holds_along_bivalent_walk(self, mobile_system):
        layering, analyzer = mobile_system
        state = layering.model.initial_state((0, 1, 1))
        for _ in range(2):
            report = lemma_4_1(layering, analyzer, state)
            assert report.holds
            if "vacuous" in report.detail:
                break
            # descend to some bivalent successor and repeat
            for _, child in layering.successors(state):
                if analyzer.valence(child).bivalent:
                    state = child
                    break


class TestLemma51:
    def test_mobile_layer(self, mobile_system):
        layering, analyzer = mobile_system
        state = layering.model.initial_state((0, 1, 1))
        report = lemma_5_1(
            layering, analyzer, state, similarity_chain(layering, state)
        )
        assert report.holds
        assert report.witnesses["layer_size"] >= 2

    def test_mobile_layer_at_depth(self, mobile_system):
        layering, analyzer = mobile_system
        state = layering.model.initial_state((0, 1, 1))
        from repro.models.mobile import prefix_action

        deeper = layering.apply(state, prefix_action(0, 2))
        report = lemma_5_1(
            layering, analyzer, deeper, similarity_chain(layering, deeper)
        )
        assert report.holds


class TestLemma53:
    def _diamonds(self, module, n):
        return [
            (*module.absent_diamond(j, n), j) for j in range(n)
        ]

    def test_synchronic_rw(self):
        import repro.layerings.synchronic_rw as rw

        layering = SynchronicRWLayering(
            SharedMemoryModel(QuorumDecide(2), 3)
        )
        analyzer = ValenceAnalyzer(layering)
        state = layering.model.initial_state((0, 1, 1))
        report = lemma_5_3(
            layering,
            analyzer,
            state,
            rw.y_chain(3),
            self._diamonds(rw, 3),
        )
        assert report.holds, report.detail

    def test_synchronic_mp(self):
        import repro.layerings.synchronic_mp as mp

        layering = SynchronicMPLayering(
            AsyncMessagePassingModel(QuorumDecide(2), 3)
        )
        analyzer = ValenceAnalyzer(layering, max_states=500_000)
        state = layering.model.initial_state((0, 1, 1))
        report = lemma_5_3(
            layering,
            analyzer,
            state,
            mp.y_chain(3),
            self._diamonds(mp, 3),
        )
        assert report.holds, report.detail
