"""Tests for the Section 6 lower-bound drivers."""

import pytest

from repro.analysis.sync_lower_bound import (
    defeat_fast_candidates,
    lemma_6_1,
    lemma_6_2,
    lemma_6_4,
    make_st_system,
    synchronous_bivalent_start,
    verify_tight_protocols,
)
from repro.core.checker import Verdict
from repro.core.valence import ValenceAnalyzer
from repro.protocols.eig import EIG
from repro.protocols.floodset import FloodSet


class TestCorollary63:
    def test_all_fast_candidates_defeated_n3_t1(self):
        rows = defeat_fast_candidates(3, 1)
        assert len(rows) == 2  # FloodSet(1), EIG(1)
        for row in rows:
            assert row.defeated
            assert row.report.verdict is Verdict.AGREEMENT

    def test_tight_protocols_verified_n3_t1(self):
        rows = verify_tight_protocols(3, 1)
        assert len(rows) == 4  # two protocols x {S^t, full}
        for row in rows:
            assert row.report.satisfied, row.protocol_name

    def test_all_fast_candidates_defeated_n4_t2(self):
        rows = defeat_fast_candidates(4, 2, max_states=2_000_000)
        assert len(rows) == 4  # rounds 1 and 2, two protocols
        for row in rows:
            assert row.defeated, (row.protocol_name, row.rounds)

    def test_tight_verified_n4_t2(self):
        rows = verify_tight_protocols(
            4, 2, max_states=2_000_000, include_full_model=False
        )
        for row in rows:
            assert row.report.satisfied, row.protocol_name

    def test_boundary_t_equals_n_minus_1(self):
        """Section 6 assumes t <= n-2.  At n=3, t=2 the bound genuinely
        collapses: with both failures spent only one nonfaulty process
        remains and agreement is vacuous, so the 2-round protocols
        SURVIVE the S^t adversary."""
        rows = defeat_fast_candidates(3, 2, max_states=500_000)
        two_round = [r for r in rows if r.rounds == 2]
        assert two_round
        assert all(r.report.satisfied for r in two_round)


class TestLemma61:
    def test_bivalent_extension_t2(self):
        layering = make_st_system(FloodSet(3), 3, 2)
        analyzer = ValenceAnalyzer(layering)
        start = synchronous_bivalent_start(layering, analyzer)
        report, execution = lemma_6_1(layering, analyzer, start)
        assert report.holds
        assert execution.length == layering.t - 1
        for state in execution:
            assert analyzer.valence(state).bivalent

    def test_rejects_univalent_start(self):
        layering = make_st_system(FloodSet(2), 3, 1)
        analyzer = ValenceAnalyzer(layering)
        state = layering.model.initial_state((0, 0, 0))
        report, _ = lemma_6_1(layering, analyzer, state)
        assert not report.holds


class TestLemma62:
    def test_two_more_rounds_needed(self):
        layering = make_st_system(FloodSet(2), 3, 1)
        analyzer = ValenceAnalyzer(layering)
        start = synchronous_bivalent_start(layering, analyzer)
        report = lemma_6_2(layering, analyzer, start)
        assert report.holds
        assert report.witnesses.get("witness_undecided")


class TestLemma64:
    def test_floodset_fast_univalence_t1(self):
        report = lemma_6_4(3, 1)
        assert report.holds
        assert report.witnesses["checked"] > 0

    def test_eig_fast_univalence_t1(self):
        report = lemma_6_4(3, 1, protocol=EIG(2))
        assert report.holds
