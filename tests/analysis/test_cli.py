"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["lower-bound"])
        assert args.n == 3 and args.t == 1
        assert args.max_states == 1_000_000

    def test_global_flag_position(self):
        args = build_parser().parse_args(
            ["--max-states", "5000", "lemmas"]
        )
        assert args.max_states == 5000


class TestCommands:
    def test_lower_bound(self, capsys):
        assert main(["lower-bound", "--n", "3", "--t", "1"]) == 0
        out = capsys.readouterr().out
        assert "crossover holds" in out
        assert "agreement-violation" in out
        assert "satisfied" in out

    def test_impossibility_all_models(self, capsys):
        assert main(["impossibility", "--protocol", "quorum"]) == 0
        out = capsys.readouterr().out
        assert "no candidate survives" in out
        assert "s1-mobile" in out
        assert "iis-snapshot" in out

    def test_impossibility_single_model(self, capsys):
        assert (
            main(
                [
                    "impossibility",
                    "--protocol",
                    "waitforall",
                    "--model",
                    "permutation-mp",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decision-violation" in out

    def test_impossibility_unknown_model(self, capsys):
        assert main(["impossibility", "--model", "bogus"]) == 2

    def test_lemmas(self, capsys):
        assert main(["lemmas", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "3.6" in out and "5.1" in out

    def test_diameter(self, capsys):
        assert main(["diameter", "--n", "3", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "d_S(X)" in out

    def test_solvability_small(self, capsys):
        assert (
            main(
                [
                    "--max-states",
                    "400000",
                    "solvability",
                    "--tasks",
                    "identity,constant",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "identity" in out and "constant" in out
