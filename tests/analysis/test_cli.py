"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["lower-bound"])
        assert args.n == 3 and args.t == 1
        assert args.max_states == 1_000_000
        assert args.timeout is None
        assert args.checkpoint is None and args.resume is None

    def test_global_flag_position(self):
        args = build_parser().parse_args(
            ["--max-states", "5000", "lemmas"]
        )
        assert args.max_states == 5000

    def test_resilience_flags(self):
        args = build_parser().parse_args(
            [
                "--timeout",
                "60",
                "--checkpoint",
                "run.ckpt",
                "--resume",
                "old.ckpt",
                "lower-bound",
            ]
        )
        assert args.timeout == 60.0
        assert args.checkpoint == "run.ckpt" and args.resume == "old.ckpt"

    def test_every_subcommand_accepts_the_budget_flags(self):
        parser = build_parser()
        for command in (
            "lower-bound",
            "impossibility",
            "solvability",
            "lemmas",
            "diameter",
        ):
            args = parser.parse_args(
                ["--max-states", "123", "--timeout", "9", command]
            )
            assert args.max_states == 123 and args.timeout == 9.0

    def test_budget_flags_also_accepted_after_the_subcommand(self):
        parser = build_parser()
        for command in (
            "lower-bound",
            "impossibility",
            "solvability",
            "lemmas",
            "diameter",
        ):
            args = parser.parse_args(
                [command, "--max-states", "123", "--timeout", "9"]
            )
            assert args.max_states == 123 and args.timeout == 9.0

    def test_trailing_flags_do_not_clobber_leading_ones(self):
        # A subparser default must not overwrite a value parsed from the
        # top-level position.
        args = build_parser().parse_args(
            ["--timeout", "60", "lower-bound", "--max-states", "7"]
        )
        assert args.timeout == 60.0 and args.max_states == 7


class TestCommands:
    def test_lower_bound(self, capsys):
        assert main(["lower-bound", "--n", "3", "--t", "1"]) == 0
        out = capsys.readouterr().out
        assert "crossover holds" in out
        assert "agreement-violation" in out
        assert "satisfied" in out

    def test_impossibility_all_models(self, capsys):
        assert main(["impossibility", "--protocol", "quorum"]) == 0
        out = capsys.readouterr().out
        assert "no candidate survives" in out
        assert "s1-mobile" in out
        assert "iis-snapshot" in out

    def test_impossibility_single_model(self, capsys):
        assert (
            main(
                [
                    "impossibility",
                    "--protocol",
                    "waitforall",
                    "--model",
                    "permutation-mp",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decision-violation" in out

    def test_impossibility_unknown_model(self, capsys):
        assert main(["impossibility", "--model", "bogus"]) == 2

    def test_lemmas(self, capsys):
        assert main(["lemmas", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "3.6" in out and "5.1" in out

    def test_diameter(self, capsys):
        assert main(["diameter", "--n", "3", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "d_S(X)" in out

    def test_solvability_small(self, capsys):
        assert (
            main(
                [
                    "--max-states",
                    "400000",
                    "solvability",
                    "--tasks",
                    "identity,constant",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "identity" in out and "constant" in out


class TestResilienceExitCodes:
    def test_budget_exhaustion_is_inconclusive_exit_2(self, capsys):
        assert main(["--max-states", "5", "lower-bound"]) == 2
        captured = capsys.readouterr()
        assert "unknown" in captured.out
        assert "inconclusive" in captured.err
        assert "--max-states" in captured.err  # the suggested bump

    def test_strict_limit_paths_also_exit_2(self, capsys):
        # The lemma drivers are strict: exhaustion raises and the top
        # level converts it into the same inconclusive exit code.
        assert main(["--max-states", "3", "lemmas"]) == 2
        captured = capsys.readouterr()
        assert "inconclusive" in captured.err

    def test_checkpoint_then_resume_reaches_verdict(self, tmp_path, capsys):
        path = str(tmp_path / "campaign.ckpt")
        assert main(["--max-states", "5", "--checkpoint", path, "lower-bound"]) == 2
        assert (tmp_path / "campaign.ckpt").exists()
        capsys.readouterr()
        assert main(["--max-states", "1000", "--resume", path, "lower-bound"]) == 0
        out = capsys.readouterr().out
        assert "crossover holds" in out

    def test_resume_missing_file_fails_cleanly(self, capsys):
        assert main(["--resume", "/nonexistent/x.ckpt", "lower-bound"]) == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_unwritable_checkpoint_path_degrades_to_diagnostic(self, capsys):
        # The run already has a result to report; a bad --checkpoint
        # path must not replace it with a traceback.
        code = main(
            [
                "--max-states",
                "5",
                "--checkpoint",
                "/nonexistent-dir/x.ckpt",
                "lower-bound",
            ]
        )
        assert code == 2
        assert "cannot write checkpoint" in capsys.readouterr().err

    def test_timeout_zero_is_inconclusive(self, capsys):
        assert main(["--timeout", "0", "lower-bound"]) == 2
        captured = capsys.readouterr()
        assert "inconclusive" in captured.err
