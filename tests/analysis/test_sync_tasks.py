"""Tests for the t-round synchronous task drivers (Lemmas 7.4/7.5)."""

import pytest

from repro.analysis.sync_tasks import (
    check_solves_in_rounds,
    lemma_7_5_consistency,
)
from repro.core.checker import Verdict
from repro.protocols.floodset import FloodSet
from repro.protocols.tasks import (
    DecideConstantProtocol,
    DecideOwnInput,
    EpsilonAgreementProtocol,
)
from repro.tasks.catalog import (
    binary_consensus,
    constant_task,
    epsilon_agreement,
    identity_task,
)


class TestPositiveInstances:
    @pytest.mark.parametrize(
        "task_factory,protocol_factory,rounds",
        [
            (identity_task, DecideOwnInput, 0),
            (constant_task, DecideConstantProtocol, 0),
            (epsilon_agreement, EpsilonAgreementProtocol, 1),
        ],
        ids=["identity-0r", "constant-0r", "epsilon-1r"],
    )
    def test_solved_within_rounds(self, task_factory, protocol_factory, rounds):
        task = task_factory(3)
        report = check_solves_in_rounds(
            task, protocol_factory(), t=1, rounds=rounds
        )
        assert report.satisfied, report.detail
        assert lemma_7_5_consistency(task, report, t=1)

    def test_round_bound_enforced(self):
        """Epsilon agreement is NOT solved in zero rounds by the quorum
        protocol (nobody has heard anything yet)."""
        report = check_solves_in_rounds(
            epsilon_agreement(3), EpsilonAgreementProtocol(), t=1, rounds=0
        )
        assert report.verdict is Verdict.DECISION
        assert "undecided after 0 round" in report.detail


class TestNegativeControls:
    def test_consensus_task_fails_in_one_round(self):
        """FloodSet(1) terminates in one round but its decided simplexes
        violate the consensus task's Δ — the operational face of
        consensus not being 1-thick connected."""
        report = check_solves_in_rounds(
            binary_consensus(3), FloodSet(1), t=1, rounds=1
        )
        assert report.verdict is Verdict.VALIDITY

    def test_consistency_vacuous_on_failure(self):
        report = check_solves_in_rounds(
            binary_consensus(3), FloodSet(1), t=1, rounds=1
        )
        assert lemma_7_5_consistency(binary_consensus(3), report, t=1)

    def test_consensus_two_rounds_t1_solves_and_is_2_thick(self):
        """With t+1 = 2 rounds FloodSet solves consensus-as-a-task; Lemma
        7.5 then requires 2-thick-connectivity — which consensus HAS
        (any two output facets share the empty (n-2)=1-size... rather:
        with k=2 the required shared face size is n-k = 1, and the all-0
        and all-1 facets share nothing, so consensus is NOT 2-thick
        for n=3... but solvability needed t+1 > t rounds, so Lemma 7.5
        (a t-round statement) says nothing about it — consistency is
        only asserted for runs deciding within t rounds."""
        report = check_solves_in_rounds(
            binary_consensus(3), FloodSet(2), t=1, rounds=2
        )
        assert report.satisfied
        # Lemma 7.5 does NOT apply (2 rounds > t=1); the task is indeed
        # not 1-thick connected, and that is consistent because the
        # premise (decided within t rounds) fails:
        one_round = check_solves_in_rounds(
            binary_consensus(3), FloodSet(2), t=1, rounds=1
        )
        assert one_round.verdict is Verdict.DECISION
