"""Tests for the ablation statistics and table rendering."""

from repro.analysis.reports import render_table, render_verdict_rows
from repro.analysis.statistics import (
    FilteredLayering,
    layer_statistics,
    submodel_size,
)
from repro.analysis.sync_lower_bound import defeat_fast_candidates
from repro.core.similarity import is_similarity_connected
from repro.core.valence import ValenceAnalyzer
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.candidates import QuorumDecide


def make_layering():
    return SynchronicRWLayering(SharedMemoryModel(QuorumDecide(2), 3))


class TestLayerStatistics:
    def test_basic_measurement(self):
        layering = make_layering()
        state = layering.model.initial_state((0, 1, 1))
        stats = layer_statistics("s-rw", layering, state)
        assert stats.actions == 15
        assert 2 <= stats.distinct_successors <= 15
        assert stats.valence_connected is None

    def test_with_analyzer(self):
        layering = make_layering()
        analyzer = ValenceAnalyzer(layering)
        state = layering.model.initial_state((0, 1, 1))
        stats = layer_statistics("s-rw", layering, state, analyzer)
        assert stats.valence_connected is True


class TestFilteredLayering:
    def test_ablating_absent_actions(self):
        """E9's headline ablation: without the (j,A) actions the layer's
        states are all the Y states — similarity connected on their own —
        but the submodel loses the ability to starve a process at all."""
        layering = make_layering()
        filtered = FilteredLayering(
            layering, keep=lambda a: a[0] != "absent", name="no-absent"
        )
        state = layering.model.initial_state((0, 1, 1))
        assert len(filtered.layer_actions(state)) == 12
        successors = [
            filtered.apply(state, a) for a in filtered.layer_actions(state)
        ]
        assert is_similarity_connected(successors, filtered)

    def test_full_layer_not_similarity_connected(self):
        """...whereas the full layer is not (the absent states hang off
        the diamond, not the chain)."""
        layering = make_layering()
        state = layering.model.initial_state((0, 1, 1))
        successors = [
            layering.apply(state, a) for a in layering.layer_actions(state)
        ]
        assert not is_similarity_connected(successors, layering)

    def test_filter_preserves_expansion(self):
        layering = make_layering()
        filtered = FilteredLayering(layering, keep=lambda a: True)
        state = layering.model.initial_state((0, 1, 1))
        action = layering.layer_actions(state)[0]
        assert filtered.apply(state, action) == layering.apply(state, action)


class TestSubmodelSize:
    def test_explores(self):
        layering = make_layering()
        stats = submodel_size(
            layering,
            [layering.model.initial_state((0, 1, 1))],
            max_depth=1,
        )
        assert stats.states > 1
        assert stats.depth_reached == 1


class TestRendering:
    def test_render_table_alignment(self):
        table = render_table(
            ["name", "value"], [["a", 1], ["long-name", True]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]
        assert "yes" in lines[3]

    def test_render_none_and_floats(self):
        table = render_table(["x"], [[None], [1.23456]])
        assert "-" in table
        assert "1.235" in table

    def test_render_verdict_rows(self):
        rows = defeat_fast_candidates(3, 1)
        text = render_verdict_rows(rows)
        assert "agreement-violation" in text
        assert "FloodSet" in text
