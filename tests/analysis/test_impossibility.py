"""Tests for the Section 5 impossibility drivers."""

import pytest

from repro.analysis.impossibility import (
    corollary_5_2,
    corollary_5_4,
    forever_bivalent_run,
    permutation_impossibility,
    refute_candidate,
    standard_layerings,
)
from repro.core.checker import Verdict
from repro.layerings.s1_mobile import S1MobileLayering
from repro.models.mobile import MobileModel
from repro.protocols.candidates import QuorumDecide, WaitForAll
from repro.protocols.floodset import FloodSet
from repro.protocols.full_information import (
    FullInformationProtocol,
    decide_constant,
    decide_min_observed,
)


class TestStandardLayerings:
    def test_dual_protocol_gets_all_five(self):
        systems = standard_layerings(QuorumDecide(2), 3)
        assert set(systems) == {
            "s1-mobile",
            "synchronic-mp",
            "permutation-mp",
            "synchronic-rw",
            "iis-snapshot",
        }

    def test_mp_only_protocol_gets_three(self):
        systems = standard_layerings(FloodSet(2), 3)
        assert "synchronic-rw" not in systems
        assert len(systems) == 3

    def test_non_protocol_rejected(self):
        with pytest.raises(TypeError):
            standard_layerings(object(), 3)


class TestCorollaries:
    def test_5_2_defeats_min_rule(self):
        fi = FullInformationProtocol(2, decide_min_observed, "min")
        refutation = corollary_5_2(fi, 3)
        assert refutation.verdict is Verdict.AGREEMENT
        assert refutation.schedule() is not None

    def test_5_2_defeats_floodset(self):
        refutation = corollary_5_2(FloodSet(2), 3)
        assert refutation.verdict is Verdict.AGREEMENT

    def test_5_4_defeats_quorum(self):
        refutation = corollary_5_4(QuorumDecide(2), 3)
        assert refutation.verdict is Verdict.AGREEMENT

    def test_permutation_defeats_quorum(self):
        refutation = permutation_impossibility(QuorumDecide(2), 3)
        assert refutation.verdict is Verdict.AGREEMENT

    def test_validity_violating_candidate_caught(self):
        fi = FullInformationProtocol(1, decide_constant(0), "const0")
        refutation = corollary_5_2(fi, 3)
        assert refutation.verdict is Verdict.VALIDITY

    def test_waitforall_decision_violation(self):
        refutation = corollary_5_2(WaitForAll(), 3)
        assert refutation.verdict is Verdict.DECISION


class TestRefuteCandidate:
    """Theorem 4.2: no candidate is SATISFIED in any layered model."""

    @pytest.mark.parametrize(
        "protocol_factory",
        [
            lambda: QuorumDecide(2),
            lambda: WaitForAll(),
            lambda: FullInformationProtocol(2, decide_min_observed, "min"),
        ],
        ids=["quorum", "waitforall", "fi-min"],
    )
    def test_never_satisfied(self, protocol_factory):
        refutations = refute_candidate(
            protocol_factory(), 3, max_states=600_000
        )
        assert refutations
        for refutation in refutations:
            assert refutation.verdict is not Verdict.SATISFIED, (
                refutation.model_name
            )


class TestForeverBivalent:
    def test_lasso_is_bivalent_everywhere(self):
        layering = S1MobileLayering(MobileModel(QuorumDecide(2), 3))
        lasso, analyzer = forever_bivalent_run(layering)
        horizon = lasso.prefix.length + 2 * lasso.cycle.length
        for k in range(horizon + 1):
            assert analyzer.valence(lasso.state_at(k)).bivalent
