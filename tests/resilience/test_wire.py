"""The compact wire codec: protocol pin and value-faithful packing.

Satellite guarantee for the parallel-scaling fix: every byte the pool
puts on a pipe or queue is pickled at ``pickle.HIGHEST_PROTOCOL`` (the
pin test greps the pool source so a stray ``conn.send(...)`` or default-
protocol ``pickle.dumps`` cannot sneak back in), and the state packs are
exact — ``unpack(pack_states(xs)) == xs`` element-wise including
duplicates, with the optional ``intern`` hook re-establishing identity
worker-side.
"""

import pathlib
import pickle

from hypothesis import given
from hypothesis import strategies as st

from repro.core.state import GlobalState
from repro.resilience import pool as pool_module
from repro.resilience.wire import (
    PROTOCOL,
    DepthPack,
    StatePack,
    dumps,
    loads,
    pack_depths,
    pack_states,
)


def _state(env, locals_):
    return GlobalState(env, tuple(locals_))


class TestProtocolPin:
    def test_protocol_is_highest(self):
        assert PROTOCOL == pickle.HIGHEST_PROTOCOL

    def test_dumps_emits_pinned_protocol_frames(self):
        # A pickle stream opens with \x80 <protocol> from protocol 2 on.
        frame = dumps(("beat", 3, "key", 1, None))
        assert frame[:2] == bytes([0x80, PROTOCOL])

    def test_dumps_loads_round_trip(self):
        message = ("done", 0, ("unit", 7), 2, {"depth": 3})
        assert loads(dumps(message)) == message

    def test_pool_source_has_no_unpinned_pickling(self):
        """The pool must not pickle outside the wire module: no direct
        ``pickle`` usage, no object-mode ``Connection.send`` (which
        would use the default protocol under the hood)."""
        source = pathlib.Path(pool_module.__file__).read_text()
        assert "import pickle" not in source
        assert "pickle.dumps" not in source
        assert ".send(" not in source.replace(".send_bytes(", "")
        assert ".recv()" not in source
        # and it really routes through the wire codec
        assert "from repro.resilience.wire import dumps" in source
        assert "from repro.resilience.wire import loads" in source


class TestStatePack:
    def test_round_trip_preserves_order_and_duplicates(self):
        states = [
            _state("e0", ["a", "b"]),
            _state("e1", ["a", "a"]),
            _state("e0", ["a", "b"]),  # duplicate state
        ]
        pack = pack_states(states)
        assert len(pack) == 3
        assert pack.unpack() == states

    def test_intern_table_shares_repeated_values(self):
        # 3 states x 3 slots = 9 value references, but only 3 distinct
        # values: the intern table holds each exactly once.
        states = [
            _state("env", ["x", "y"]),
            _state("env", ["y", "x"]),
            _state("env", ["x", "x"]),
        ]
        pack = pack_states(states)
        assert len(pack.values) == 3
        assert set(pack.values) == {"env", "x", "y"}

    def test_intern_hook_routes_every_state(self):
        states = [_state(0, [1, 2]), _state(0, [2, 1])]
        seen = []

        def intern(state):
            seen.append(state)
            return state

        assert pack_states(states).unpack(intern=intern) == states
        assert seen == states

    def test_empty_pack(self):
        pack = pack_states([])
        assert len(pack) == 0
        assert pack.unpack() == []

    def test_pack_is_smaller_than_naive_pickle_on_shared_values(self):
        shared = tuple(range(50))
        states = [_state(shared, [shared] * 4) for _ in range(32)]
        packed = dumps(pack_states(states))
        naive = dumps(states)
        assert len(packed) < len(naive)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.lists(st.integers(0, 3), min_size=1, max_size=3),
            ),
            max_size=12,
        )
    )
    def test_property_round_trip(self, raw):
        states = [_state(env, locs) for env, locs in raw]
        assert pack_states(states).unpack() == states


class TestDepthPack:
    def test_round_trip(self):
        mapping = {
            _state("e", ["a"]): 0,
            _state("e", ["b"]): 1,
            _state("f", ["a"]): 2,
        }
        pack = pack_depths(mapping)
        assert isinstance(pack, DepthPack)
        assert isinstance(pack.pack, StatePack)
        assert pack.unpack() == mapping

    def test_survives_the_wire(self):
        mapping = {_state(i, [i, i + 1]): i for i in range(5)}
        assert loads(dumps(pack_depths(mapping))).unpack() == mapping

    def test_intern_hook_applies_to_keys(self):
        mapping = {_state("e", ["a"]): 4}
        canonical = {}

        def intern(state):
            return canonical.setdefault(state, state)

        first = pack_depths(mapping).unpack(intern=intern)
        second = pack_depths(mapping).unpack(intern=intern)
        assert first == second == mapping
        (a,), (b,) = first.keys(), second.keys()
        assert a is b  # identity re-established across unpacks
