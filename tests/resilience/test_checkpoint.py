"""Checkpoint/resume: resumed runs reach uninterrupted verdicts.

The acceptance bar: for at least one model per family (synchronous,
mobile, shared-memory), running ``check_all`` under a budget that trips,
then resuming from the produced checkpoint — possibly over many hops —
must yield a verdict identical to the uninterrupted run's, witness
included.
"""

import pytest

from repro.core.checker import ConsensusChecker
from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    CheckAllCheckpoint,
    CheckpointCorrupt,
    CheckpointMismatch,
    load_checkpoint,
    save_checkpoint,
    system_fingerprint,
)

MAX_HOPS = 500


def _resume_to_verdict(system, per_hop_budget):
    """Run check_all under a tiny budget, resuming until conclusive."""
    checkpoint = None
    for _ in range(MAX_HOPS):
        report = ConsensusChecker(system, per_hop_budget).check_all(
            system.model, checkpoint=checkpoint
        )
        if not report.inconclusive:
            return report
        checkpoint = report.checkpoint
        assert isinstance(checkpoint, CheckAllCheckpoint)
    raise AssertionError(f"no verdict after {MAX_HOPS} resume hops")


def _assert_same_outcome(resumed, baseline):
    assert resumed.verdict is baseline.verdict
    assert resumed.inputs == baseline.inputs
    if baseline.execution is None:
        assert resumed.execution is None
    else:
        assert resumed.execution.actions == baseline.execution.actions
    assert resumed.states_explored == baseline.states_explored


class TestResumeEqualsUninterrupted:
    def test_synchronous_family(self, st_floodset_tight):
        baseline = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model
        )
        resumed = _resume_to_verdict(st_floodset_tight, per_hop_budget=5)
        assert baseline.satisfied
        _assert_same_outcome(resumed, baseline)

    def test_synchronous_family_refuted(self, st_floodset_fast):
        baseline = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model
        )
        resumed = _resume_to_verdict(st_floodset_fast, per_hop_budget=2)
        assert baseline.refuted
        _assert_same_outcome(resumed, baseline)

    def test_mobile_family(self, mobile_floodset):
        baseline = ConsensusChecker(mobile_floodset).check_all(
            mobile_floodset.model
        )
        resumed = _resume_to_verdict(mobile_floodset, per_hop_budget=25)
        _assert_same_outcome(resumed, baseline)

    def test_shared_memory_family(self, quorum_synchronic_rw):
        baseline = ConsensusChecker(quorum_synchronic_rw).check_all(
            quorum_synchronic_rw.model
        )
        resumed = _resume_to_verdict(quorum_synchronic_rw, per_hop_budget=50)
        _assert_same_outcome(resumed, baseline)


class TestDiskRoundTrip:
    def test_save_load_resume(self, st_floodset_tight, tmp_path):
        report = ConsensusChecker(st_floodset_tight, max_states=5).check_all(
            st_floodset_tight.model
        )
        assert report.inconclusive
        path = tmp_path / "sweep.ckpt"
        save_checkpoint(report.checkpoint, path)
        loaded = load_checkpoint(path)
        assert isinstance(loaded, CheckAllCheckpoint)
        assert loaded.assignment_index == report.checkpoint.assignment_index
        resumed = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model, checkpoint=loaded
        )
        baseline = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model
        )
        assert resumed.verdict is baseline.verdict
        assert resumed.states_explored == baseline.states_explored

    def test_not_a_checkpoint_file(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        import pickle

        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(CheckpointMismatch):
            load_checkpoint(path)


class TestFingerprintGuard:
    def test_wrong_system_rejected(
        self, st_floodset_tight, st_floodset_fast
    ):
        report = ConsensusChecker(st_floodset_tight, max_states=5).check_all(
            st_floodset_tight.model
        )
        assert report.inconclusive
        with pytest.raises(CheckpointMismatch):
            ConsensusChecker(st_floodset_fast).check_all(
                st_floodset_fast.model, checkpoint=report.checkpoint
            )

    def test_fingerprint_mentions_protocol(self, st_floodset_tight):
        fp = system_fingerprint(st_floodset_tight)
        assert "StSynchronousLayering" in fp
        assert "FloodSet" in fp


class TestAtomicSave:
    def test_save_replaces_atomically(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        first = CampaignCheckpoint(completed={"unit": "v1"})
        second = CampaignCheckpoint(completed={"unit": "v2"})
        save_checkpoint(first, path)
        save_checkpoint(second, path)
        assert load_checkpoint(path).completed == {"unit": "v2"}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_mid_write_death_preserves_previous(self, tmp_path):
        """SIGKILL inside the serialization must leave the previous
        checkpoint loadable — the write goes to a temp file and only an
        atomic rename publishes it."""
        import multiprocessing
        import os
        import signal

        path = tmp_path / "campaign.ckpt"
        save_checkpoint(CampaignCheckpoint(completed={"unit": "v1"}), path)

        def die_mid_save() -> None:
            import pickle as pickle_module

            def torn_dump(obj, fh, protocol=None):
                fh.write(b"\x80torn-partial-write")
                fh.flush()
                os.fsync(fh.fileno())
                os.kill(os.getpid(), signal.SIGKILL)

            pickle_module.dump = torn_dump
            save_checkpoint(
                CampaignCheckpoint(completed={"unit": "v2"}), path
            )

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=die_mid_save)
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == -signal.SIGKILL
        assert load_checkpoint(path).completed == {"unit": "v1"}

    def test_directory_fsynced_after_rename(self, tmp_path, monkeypatch):
        """Durability needs three steps in order: fsync the temp file,
        rename it over the target, fsync the *directory* — without the
        last one a power failure can roll the rename back even though
        os.replace already returned."""
        import os as os_module
        import stat as stat_module

        events = []
        real_fsync = os_module.fsync
        real_replace = os_module.replace

        def spy_fsync(fd):
            mode = os_module.fstat(fd).st_mode
            events.append(
                ("fsync", "dir" if stat_module.S_ISDIR(mode) else "file")
            )
            real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("rename", None))
            real_replace(src, dst)

        monkeypatch.setattr(os_module, "fsync", spy_fsync)
        monkeypatch.setattr(os_module, "replace", spy_replace)
        save_checkpoint(
            CampaignCheckpoint(completed={"unit": "v1"}),
            tmp_path / "campaign.ckpt",
        )
        assert events == [
            ("fsync", "file"),
            ("rename", None),
            ("fsync", "dir"),
        ]

    def test_failed_save_cleans_temp_and_keeps_old(
        self, tmp_path, monkeypatch
    ):
        import pickle as pickle_module

        path = tmp_path / "campaign.ckpt"
        save_checkpoint(CampaignCheckpoint(completed={"unit": "v1"}), path)

        def boom(obj, fh, protocol=None):
            raise RuntimeError("disk full, say")

        monkeypatch.setattr(pickle_module, "dump", boom)
        with pytest.raises(RuntimeError):
            save_checkpoint(
                CampaignCheckpoint(completed={"unit": "v2"}), path
            )
        monkeypatch.undo()
        assert list(tmp_path.glob("*.tmp")) == []
        assert load_checkpoint(path).completed == {"unit": "v1"}


class TestCorruptLoad:
    def test_truncated_file_is_a_clean_diagnostic(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        save_checkpoint(CampaignCheckpoint(completed={"unit": "v1"}), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorrupt) as excinfo:
            load_checkpoint(path)
        message = str(excinfo.value)
        assert "corrupted checkpoint" in message
        assert str(path) in message

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"this is not a pickle at all \x00\xff")
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)

    def test_corrupt_is_a_mismatch(self):
        """Existing CheckpointMismatch handlers (the CLI exits 2) must
        cover corruption without new plumbing."""
        assert issubclass(CheckpointCorrupt, CheckpointMismatch)

    def test_missing_file_stays_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_checkpoint(tmp_path / "never-written.ckpt")


class TestCampaignCheckpoint:
    def test_record_and_report_for(self):
        campaign = CampaignCheckpoint()
        assert campaign.report_for("unit") is None
        campaign.suspend("unit", inner=None)
        campaign.record("unit", report="done")
        assert campaign.report_for("unit") == "done"
        assert campaign.current is None and campaign.inner is None

    def test_resume_point_is_keyed(self):
        campaign = CampaignCheckpoint()
        campaign.suspend("a", inner="partial-a")
        assert campaign.resume_point("a") == "partial-a"
        assert campaign.resume_point("b") is None
