"""The fault-injection harness must kill every mutant with a witness.

The robustness bar for the verification engine itself: for each injected
fault class the checker must (a) refute the mutant, (b) with the verdict
class the fault targets, and (c) produce a witness that replays through
the layered system.  FloodSet and EIG at ``t+1`` rounds are the subjects;
a surviving mutant is a checker bug.
"""

import pytest

from repro.core.checker import Verdict
from repro.resilience.mutation import (
    MUTATION_OPERATORS,
    DropRelayMutant,
    FlipDecisionMutant,
    MutantProtocol,
    NeverDecideMutant,
    StallOnConflictMutant,
    kill_rate,
    mutation_campaign,
    mutation_kill_table,
    replay_witness,
)


@pytest.fixture(scope="module")
def campaign():
    return mutation_campaign(n=3, t=1)


class TestKillRate:
    def test_all_mutants_killed(self, campaign):
        survivors = [
            f"{r.operator} on {r.protocol_name} -> {r.verdict.value}"
            for r in campaign
            if not r.killed
        ]
        assert not survivors, f"surviving mutants: {survivors}"
        assert kill_rate(campaign) == 1.0

    def test_both_subject_protocols_covered(self, campaign):
        names = {r.protocol_name for r in campaign}
        assert any("FloodSet" in n for n in names)
        assert any("EIG" in n for n in names)

    def test_at_least_four_violation_classes(self, campaign):
        classes = {r.verdict for r in campaign}
        assert classes >= {
            Verdict.AGREEMENT,
            Verdict.VALIDITY,
            Verdict.DECISION,
            Verdict.WRITE_ONCE,
        }

    def test_every_operator_ran_on_every_subject(self, campaign):
        assert len(campaign) == 2 * len(MUTATION_OPERATORS)

    def test_expected_verdict_classes(self, campaign):
        for result in campaign:
            assert result.verdict in result.expected, result.operator


class TestWitnesses:
    def test_every_witness_replays(self, campaign):
        assert all(r.witness_ok for r in campaign)

    def test_decision_mutants_carry_lassos(self, campaign):
        lassos = [r for r in campaign if r.verdict is Verdict.DECISION]
        assert lassos
        for r in lassos:
            assert r.report.cycle is not None
            assert r.report.cycle.initial == r.report.cycle.final

    def test_replay_rejects_missing_execution(self, campaign):
        import dataclasses

        killed = next(r for r in campaign if r.verdict is Verdict.AGREEMENT)
        tampered = dataclasses.replace(
            killed.report, execution=None, cycle=None
        )
        from repro.analysis.sync_lower_bound import make_st_system
        from repro.protocols.floodset import FloodSet

        system = make_st_system(FloodSet(2), 3, 1)
        assert not replay_witness(system, tampered)


class TestKillTable:
    def test_table_renders(self, campaign):
        table = mutation_kill_table(campaign)
        assert "mutation kill rate" in table
        assert "14/14 (100%)" in table
        assert "flip-decision" in table and "drop-relay" in table
        assert "stall-on-conflict" in table

    def test_kill_rate_empty(self):
        assert kill_rate([]) == 0.0


class TestOperatorMechanics:
    def test_wrapper_requires_round_structure(self):
        class Boundless:
            def name(self):
                return "boundless"

        with pytest.raises(TypeError):
            FlipDecisionMutant(Boundless())

    def test_mutant_name_mentions_operator_and_inner(self):
        from repro.protocols.floodset import FloodSet

        mutant = NeverDecideMutant(FloodSet(2))
        assert "never-decide" in mutant.name()
        assert "FloodSet" in mutant.name()

    def test_identity_base_delegates(self):
        from repro.protocols.floodset import FloodSet

        inner = FloodSet(2)
        wrapped = MutantProtocol(inner)
        local = inner.initial_local(0, 3, 1)
        assert wrapped.initial_local(0, 3, 1) == local
        assert wrapped.outgoing(0, 3, local) == inner.outgoing(0, 3, local)
        assert wrapped.decision(0, 3, local) == inner.decision(0, 3, local)

    def test_drop_relay_participates_in_first_round(self):
        from repro.protocols.floodset import FloodSet

        inner = FloodSet(2)
        mutant = DropRelayMutant(inner)
        fresh = inner.initial_local(2, 3, 1)
        assert mutant.outgoing(2, 3, fresh) == inner.outgoing(2, 3, fresh)

    def test_stall_on_conflict_decides_on_unanimity(self):
        """The fault must stay latent off the adversarial schedules: a
        victim whose pool is a singleton decides exactly like the
        original protocol."""
        import dataclasses

        from repro.protocols.floodset import FloodSet

        inner = FloodSet(2)
        mutant = StallOnConflictMutant(inner)
        decided = dataclasses.replace(
            inner.initial_local(2, 3, 1), round=2, decided=1
        )
        assert mutant.decision(2, 3, decided) == inner.decision(2, 3, decided)
        assert mutant.decision(2, 3, decided) is not None
        conflicted = dataclasses.replace(
            decided, known=frozenset({0, 1})
        )
        assert inner.decision(2, 3, conflicted) is not None
        assert mutant.decision(2, 3, conflicted) is None
