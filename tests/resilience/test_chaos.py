"""The crashpoint framework: specs, arming, scope, and firing modes.

The full kill/resume sweeps live in the integration suite
(``tests/integration/test_chaos_recovery.py``); this file pins down the
injection mechanics those sweeps rely on.
"""

import multiprocessing
import os
import signal
import time

import pytest

import repro.resilience.chaos as chaos
from repro.resilience.chaos import (
    ENV_SCOPE,
    ENV_SPECS,
    ChaosInjected,
    CrashSpec,
    _select_hits,
    active_plan,
    crashpoint,
    is_armed,
    parse_specs,
)


class TestSpecs:
    def test_parse_round_trip(self):
        specs = parse_specs("a.b:3:kill; c.d:1:stall:2.5")
        assert specs == (
            CrashSpec("a.b", 3, "kill", 0.0),
            CrashSpec("c.d", 1, "stall", 2.5),
        )
        assert specs[1].describe() == "c.d:1:stall:2.5"

    def test_empty_chunks_skipped(self):
        assert parse_specs(";;  ;") == ()

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            parse_specs("just-a-name")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            parse_specs("a:1:explode")


class TestCrashpoint:
    def test_disarmed_is_a_noop(self):
        assert not is_armed()
        crashpoint("anything.at.all")  # must not raise, count, or trace

    def test_raise_mode_fires_on_the_exact_hit(self):
        with active_plan("p.q:2:raise") as state:
            crashpoint("p.q")  # hit 1: no fire
            with pytest.raises(ChaosInjected):
                crashpoint("p.q")  # hit 2: fire
            assert state.hits["p.q"] == 2
            assert [s.hit for s in state.fired] == [2]

    def test_hits_counted_per_name(self):
        with active_plan("") as state:
            crashpoint("a")
            crashpoint("a")
            crashpoint("b")
            assert state.hits == {"a": 2, "b": 1}

    def test_stall_mode_sleeps(self):
        with active_plan("s:1:stall:0.05"):
            started = time.monotonic()
            crashpoint("s")
            assert time.monotonic() - started >= 0.04

    def test_trace_file_records_every_hit(self, tmp_path):
        trace = tmp_path / "trace.txt"
        with active_plan("", trace_path=str(trace)):
            crashpoint("x.y")
            crashpoint("x.y")
            crashpoint("z")
        assert trace.read_text().splitlines() == ["x.y", "x.y", "z"]

    def test_plan_restored_after_context(self):
        with active_plan("p:1:raise"):
            assert is_armed()
        assert not is_armed()


def _child_hits_crashpoint(env: dict) -> None:
    os.environ.update(env)
    chaos.rearm_from_env()
    crashpoint("engine.point")


class TestScope:
    """Workers inherit the chaos environment but must not die at engine
    crashpoints — a killed worker's unit would be retried, re-killed and
    quarantined, changing verdicts."""

    def _run_child(self, env: dict) -> int:
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_child_hits_crashpoint, args=(env,))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode is not None
        return proc.exitcode

    def test_main_scope_spares_child_processes(self):
        code = self._run_child(
            {ENV_SPECS: "engine.point:1:kill", ENV_SCOPE: "main"}
        )
        assert code == 0

    def test_all_scope_kills_child_processes(self):
        code = self._run_child(
            {ENV_SPECS: "engine.point:1:kill", ENV_SCOPE: "all"}
        )
        assert code == -signal.SIGKILL

    def test_kill_mode_is_a_real_sigkill(self):
        ctx = multiprocessing.get_context("fork")

        def die():
            # scope="all": this body runs in a multiprocessing child,
            # which the default main-only scope would deliberately spare.
            with active_plan("p:1:kill", scope="all"):
                crashpoint("p")

        proc = ctx.Process(target=die)
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == -signal.SIGKILL


class TestHitSelection:
    def test_small_counts_take_everything(self):
        assert _select_hits(3, 5, "p", seed=0) == [1, 2, 3]

    def test_large_counts_keep_first_and_last(self):
        picks = _select_hits(100, 4, "p", seed=0)
        assert len(picks) == 4
        assert picks[0] == 1 and picks[-1] == 100
        assert all(1 <= h <= 100 for h in picks)

    def test_selection_is_deterministic(self):
        assert _select_hits(50, 3, "p", seed=1) == _select_hits(
            50, 3, "p", seed=1
        )

    def test_selection_varies_with_seed(self):
        varied = {
            tuple(_select_hits(1000, 5, "p", seed=s)) for s in range(8)
        }
        assert len(varied) > 1
