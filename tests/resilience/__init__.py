"""Tests for the resilience layer: budgets, checkpoints, mutation."""
