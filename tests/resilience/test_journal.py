"""The checkpoint journal: append, heal, replay, compact.

The core contract under test: *any* byte-level truncation of the tail
(the signature of ``kill -9`` mid-append) must load without error into a
prefix of the committed campaign, and loading must physically heal the
file so subsequent appends produce a well-formed journal again.
"""

import os
import pickle

import pytest

from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    CheckpointCorrupt,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.journal import (
    MAGIC,
    CampaignJournal,
    _encode_frame,
    is_journal,
    load_journal,
)


def _journal_with_units(path, units, **kwargs):
    journal = CampaignJournal.create(path, **kwargs)
    for key, report in units:
        journal.record(key, report)
    journal.close()
    return journal


class TestRoundTrip:
    def test_records_replay(self, tmp_path):
        path = tmp_path / "campaign.journal"
        _journal_with_units(path, [("a", "ra"), ("b", "rb")])
        state, info = load_journal(path)
        assert state.completed == {"a": "ra", "b": "rb"}
        assert not info.healed
        assert info.records == 3  # base + 2 units

    def test_suspend_replays(self, tmp_path):
        path = tmp_path / "campaign.journal"
        journal = CampaignJournal.create(path)
        journal.record("a", "ra")
        journal.suspend("b", "partial-b")
        journal.close()
        state, _ = load_journal(path)
        assert state.completed == {"a": "ra"}
        assert state.current == "b"
        assert state.resume_point("b") == "partial-b"

    def test_load_checkpoint_dispatches_to_journal(self, tmp_path):
        path = tmp_path / "campaign.journal"
        _journal_with_units(path, [("a", "ra")])
        loaded = load_checkpoint(path)
        assert isinstance(loaded, CampaignCheckpoint)
        assert loaded.completed == {"a": "ra"}

    def test_is_journal(self, tmp_path):
        journal_path = tmp_path / "j.ckpt"
        _journal_with_units(journal_path, [])
        legacy_path = tmp_path / "legacy.ckpt"
        save_checkpoint(CampaignCheckpoint(), legacy_path)
        assert is_journal(journal_path)
        assert not is_journal(legacy_path)
        assert not is_journal(tmp_path / "missing.ckpt")

    def test_resume_continues_appending(self, tmp_path):
        path = tmp_path / "campaign.journal"
        _journal_with_units(path, [("a", "ra")])
        journal = CampaignJournal.resume(path)
        assert journal.completed == {"a": "ra"}
        journal.record("b", "rb")
        journal.close()
        state, info = load_journal(path)
        assert state.completed == {"a": "ra", "b": "rb"}
        assert not info.healed

    def test_journal_pickles_as_plain_snapshot(self, tmp_path):
        journal = _journal_with_units(
            tmp_path / "campaign.journal", [("a", "ra")]
        )
        clone = pickle.loads(pickle.dumps(journal))
        assert type(clone) is CampaignCheckpoint
        assert clone.completed == {"a": "ra"}

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignJournal(tmp_path / "j", checkpoint_interval=0)
        with pytest.raises(ValueError):
            CampaignJournal(tmp_path / "j", compact_every=1)


class TestTornTailHealing:
    def test_every_truncation_offset_heals(self, tmp_path):
        """Chop the journal at *every* byte offset: each load must
        succeed, yield a prefix of the committed units, and leave the
        file healed (a second load finds nothing to fix)."""
        path = tmp_path / "campaign.journal"
        units = [("a", "ra"), ("b", "rb"), ("c", "rc")]
        _journal_with_units(path, units)
        blob = path.read_bytes()
        prefixes = [{}, {"a": "ra"}, {"a": "ra", "b": "rb"},
                    {"a": "ra", "b": "rb", "c": "rc"}]
        for cut in range(len(MAGIC), len(blob) + 1):
            torn = tmp_path / f"torn-{cut}.journal"
            torn.write_bytes(blob[:cut])
            state, info = load_journal(torn)
            assert state.completed in prefixes, f"cut at {cut}"
            healed_state, healed_info = load_journal(torn)
            assert not healed_info.healed, f"cut at {cut} not healed"
            assert healed_state.completed == state.completed

    def test_healed_journal_accepts_new_records(self, tmp_path):
        path = tmp_path / "campaign.journal"
        _journal_with_units(path, [("a", "ra"), ("b", "rb")])
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])  # tear the final frame
        journal = CampaignJournal.resume(path)
        assert journal.load_info is not None and journal.load_info.healed
        assert journal.completed == {"a": "ra"}
        journal.record("b", "rb-rerun")
        journal.close()
        state, info = load_journal(path)
        assert not info.healed
        assert state.completed == {"a": "ra", "b": "rb-rerun"}

    def test_crc_flip_in_tail_is_healed(self, tmp_path):
        path = tmp_path / "campaign.journal"
        _journal_with_units(path, [("a", "ra"), ("b", "rb")])
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # corrupt the last frame's payload
        path.write_bytes(bytes(blob))
        state, info = load_journal(path)
        assert info.healed
        assert state.completed == {"a": "ra"}

    def test_magicless_file_is_corrupt_not_healed(self, tmp_path):
        path = tmp_path / "garbage.journal"
        path.write_bytes(b"definitely not a journal")
        with pytest.raises(CheckpointCorrupt):
            load_journal(path)

    def test_unknown_record_shape_is_corrupt(self, tmp_path):
        """A CRC-valid interior record with an unrecognized kind is
        campaign corruption, not a torn tail — healing it away would
        silently drop committed work after it."""
        path = tmp_path / "campaign.journal"
        _journal_with_units(path, [("a", "ra")])
        with open(path, "ab") as fh:
            fh.write(_encode_frame("no-such-kind", ("x", "y")))
            fh.write(_encode_frame("unit", ("b", "rb")))
        with pytest.raises(CheckpointCorrupt) as excinfo:
            load_journal(path)
        assert "delete the file" in str(excinfo.value)

    def test_empty_journal_after_magic_is_valid(self, tmp_path):
        path = tmp_path / "campaign.journal"
        path.write_bytes(MAGIC)
        state, info = load_journal(path)
        assert state.completed == {}
        assert info.records == 0


class TestCompaction:
    def test_compacts_after_threshold(self, tmp_path):
        path = tmp_path / "campaign.journal"
        journal = CampaignJournal.create(path, compact_every=3)
        for i in range(3):
            journal.record(f"u{i}", f"r{i}")
        journal.close()
        state, info = load_journal(path)
        assert info.records == 1  # rewritten as a single base snapshot
        assert state.completed == {f"u{i}": f"r{i}" for i in range(3)}

    def test_compaction_bounds_file_size(self, tmp_path):
        growing = tmp_path / "growing.journal"
        journal = CampaignJournal.create(growing, compact_every=4)
        for i in range(64):
            journal.record(f"u{i}", "x" * 32)
        journal.close()
        compact = tmp_path / "compact.journal"
        snapshot = CampaignJournal.adopt(compact, journal.snapshot())
        snapshot.close()
        # Same state, and the journal never grew past O(state) + a few
        # uncompacted records.
        assert load_journal(growing)[0].completed == journal.completed
        assert growing.stat().st_size < 3 * compact.stat().st_size

    def test_appends_continue_after_compaction(self, tmp_path):
        path = tmp_path / "campaign.journal"
        journal = CampaignJournal.create(path, compact_every=2)
        for i in range(5):
            journal.record(f"u{i}", f"r{i}")
        journal.close()
        state, _ = load_journal(path)
        assert state.completed == {f"u{i}": f"r{i}" for i in range(5)}


class TestDurabilityCadence:
    def test_checkpoint_interval_batches_fsync(self, tmp_path, monkeypatch):
        import repro.resilience.journal as journal_module

        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            journal_module.os, "fsync",
            lambda fd: (calls.append(fd), real_fsync(fd))[1],
        )
        journal = CampaignJournal.create(
            tmp_path / "j.journal", checkpoint_interval=3
        )
        base_syncs = len(calls)  # the base snapshot is always durable
        journal.record("a", "ra")
        journal.record("b", "rb")
        assert len(calls) == base_syncs  # batched: not yet at interval
        journal.record("c", "rc")
        assert len(calls) == base_syncs + 1  # third unit hit the cadence
        journal.close()

    def test_suspend_is_always_durable(self, tmp_path, monkeypatch):
        import repro.resilience.journal as journal_module

        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            journal_module.os, "fsync",
            lambda fd: (calls.append(fd), real_fsync(fd))[1],
        )
        journal = CampaignJournal.create(
            tmp_path / "j.journal", checkpoint_interval=100
        )
        before = len(calls)
        journal.suspend("a", "partial")
        assert len(calls) == before + 1
        journal.close()


class TestLegacyInterop:
    def test_legacy_checkpoint_still_loads(self, tmp_path):
        path = tmp_path / "legacy.ckpt"
        save_checkpoint(CampaignCheckpoint(completed={"a": "ra"}), path)
        loaded = load_checkpoint(path)
        assert loaded.completed == {"a": "ra"}

    def test_adopt_migrates_legacy_state(self, tmp_path):
        legacy = CampaignCheckpoint(completed={"a": "ra"}, current="b")
        path = tmp_path / "migrated.journal"
        journal = CampaignJournal.adopt(path, legacy)
        journal.record("b", "rb")
        journal.close()
        assert is_journal(path)
        state, _ = load_journal(path)
        assert state.completed == {"a": "ra", "b": "rb"}

    def test_corrupt_legacy_is_clean_mismatch(self, tmp_path):
        """Acceptance bar: an old/garbled checkpoint must either load or
        fail with a CheckpointMismatch — never a raw pickle traceback."""
        path = tmp_path / "broken.ckpt"
        path.write_bytes(b"\x80\x05 broken pickle bytes")
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)
