"""The fault-isolated worker pool: crashes, hangs, retries, quarantine.

The acceptance bar for the pool itself (the checker-level guarantees are
in ``tests/core/test_parallel_checker.py``): a worker SIGKILLed mid-unit
is respawned and the unit retried to success with the kill on record; a
unit that fails deterministically is quarantined without disturbing its
neighbours; a hung unit is detected and killed by the per-unit timeout;
and the merged outcome mapping is keyed and complete regardless of
completion order.
"""

import os
import signal
import time

import pytest

from repro.resilience.pool import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_TIMEOUT,
    PoolConfig,
    pool_config_for,
    run_units,
)


# -- module-level unit functions (workers import them by reference) ----------

def _square(payload):
    return payload * payload


def _kill_once(payload):
    """SIGKILL our own process the first time; succeed once the marker
    file exists (i.e. on the retry)."""
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempt 1 died here")
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _always_raise(payload):
    raise RuntimeError(f"deterministic failure for {payload!r}")


def _hang_forever(payload):
    while True:
        time.sleep(0.5)


def _crash_or_square(payload):
    if payload == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    return payload * 2


class TestHappyPath:
    def test_all_units_complete_keyed(self):
        units = [(f"u{i}", i) for i in range(8)]
        report = run_units(_square, units, PoolConfig(workers=3))
        assert list(report.outcomes) == [f"u{i}" for i in range(8)]
        for i in range(8):
            outcome = report.outcomes[f"u{i}"]
            assert outcome.ok and outcome.value == i * i
            assert outcome.attempts == 1 and outcome.faults == ()
        assert report.quarantined == [] and report.retried == []
        assert report.workers == 3

    def test_serial_fallback_same_shape(self):
        units = [(f"u{i}", i) for i in range(4)]
        report = run_units(_square, units, PoolConfig(workers=1))
        assert report.workers == 0
        assert [report.value(k) for k, _ in units] == [0, 1, 4, 9]

    def test_empty_units(self):
        report = run_units(_square, [], PoolConfig(workers=2))
        assert report.outcomes == {}

    def test_on_complete_sees_every_unit_once(self):
        seen = []
        units = [(f"u{i}", i) for i in range(6)]
        run_units(
            _square,
            units,
            PoolConfig(workers=2),
            on_complete=lambda outcome: seen.append(outcome.key),
        )
        assert sorted(seen) == sorted(k for k, _ in units)


class TestCrashRecovery:
    def test_sigkill_mid_unit_retries_to_success(self, tmp_path):
        marker = str(tmp_path / "died-once")
        units = [("victim", (marker, 42)), ("bystander", (str(tmp_path / "x"), 7))]
        report = run_units(
            _kill_once,
            units,
            PoolConfig(workers=2, max_retries=2, retry_backoff=0.01),
        )
        victim = report.outcomes["victim"]
        assert victim.ok and victim.value == 42
        assert victim.attempts >= 2
        assert any(f.kind == FAULT_CRASH for f in victim.faults)

    def test_deterministic_crasher_quarantined_not_fatal(self, tmp_path):
        units = [("ok1", "a"), ("crash", "crash"), ("ok2", "b")]
        report = run_units(
            _crash_or_square,
            units,
            PoolConfig(workers=2, max_retries=1, retry_backoff=0.01),
        )
        assert report.quarantined == ["crash"]
        crashed = report.outcomes["crash"]
        assert crashed.attempts == 2  # original + one retry
        assert all(f.kind == FAULT_CRASH for f in crashed.faults)
        assert FAULT_CRASH in crashed.cause()
        # The neighbours finished normally despite the repeated kills.
        assert report.value("ok1") == "aa"
        assert report.value("ok2") == "bb"

    def test_value_raises_for_quarantined(self):
        report = run_units(
            _always_raise,
            [("bad", 1)],
            PoolConfig(workers=2, max_retries=0),
        )
        with pytest.raises(ValueError, match="quarantined"):
            report.value("bad")


class TestExceptionsAndTimeouts:
    def test_unit_exception_records_traceback(self):
        report = run_units(
            _always_raise,
            [("bad", "payload-x"), ("good", None)],
            PoolConfig(workers=2, max_retries=1, retry_backoff=0.01),
        )
        bad = report.outcomes["bad"]
        assert bad.quarantined and bad.attempts == 2
        assert all(f.kind == FAULT_ERROR for f in bad.faults)
        assert "deterministic failure" in bad.faults[-1].detail

    def test_serial_engine_retries_exceptions_too(self):
        report = run_units(
            _always_raise, [("bad", 1)], PoolConfig(workers=1, max_retries=2)
        )
        bad = report.outcomes["bad"]
        assert bad.quarantined and bad.attempts == 3

    def test_hung_unit_killed_by_timeout(self):
        report = run_units(
            _hang_forever,
            [("hung", None)],
            PoolConfig(
                workers=2,
                unit_timeout=0.5,
                max_retries=0,
                heartbeat_interval=0.05,
            ),
        )
        hung = report.outcomes["hung"]
        assert hung.quarantined
        assert any(f.kind == FAULT_TIMEOUT for f in hung.faults)


class TestRetryJitter:
    """Retry backoff carries deterministic seeded jitter (RetryPolicy):
    different units spread out instead of retrying in lockstep, yet the
    same configuration reproduces the same delays run after run."""

    def _serial_delays(self, monkeypatch, seed=0):
        import repro.resilience.pool as pool_module

        slept: list[float] = []
        monkeypatch.setattr(
            pool_module.time, "sleep", lambda s: slept.append(s)
        )
        run_units(
            _always_raise,
            [("u:a", 1), ("u:b", 2), ("u:c", 3)],
            PoolConfig(
                workers=1,
                max_retries=2,
                retry_backoff=0.1,
                retry_seed=seed,
            ),
        )
        monkeypatch.undo()
        return slept

    def test_delays_differ_across_units(self, monkeypatch):
        slept = self._serial_delays(monkeypatch)
        first_retry = slept[0::2]  # attempt-1 delay of each unit
        assert len(set(first_retry)) == len(first_retry)

    def test_delays_reproduce_across_runs(self, monkeypatch):
        assert self._serial_delays(monkeypatch) == self._serial_delays(
            monkeypatch
        )

    def test_delays_vary_with_seed(self, monkeypatch):
        assert self._serial_delays(monkeypatch, seed=0) != self._serial_delays(
            monkeypatch, seed=1
        )

    def test_delays_stay_in_jitter_band(self, monkeypatch):
        slept = self._serial_delays(monkeypatch)
        # Two retries per unit: attempt 1 in [0.1, 0.15), attempt 2 in
        # [0.2, 0.3) with the default jitter of 0.5.
        for first, second in zip(slept[0::2], slept[1::2]):
            assert 0.1 <= first < 0.15
            assert 0.2 <= second < 0.3

    def test_policy_mirrors_config(self):
        config = PoolConfig(
            retry_backoff=0.25, max_retries=3, retry_jitter=0.1, retry_seed=9
        )
        policy = config.retry_policy()
        assert policy.base_delay == 0.25
        assert policy.max_retries == 3
        assert policy.jitter == 0.1
        assert policy.seed == 9

    def test_supervisor_uses_the_same_policy(self, tmp_path):
        """The parallel arm must retry with the identical seeded delay
        the serial arm uses — one formula, one policy object."""
        config = PoolConfig(workers=2, max_retries=1, retry_backoff=0.01)
        report = run_units(
            _kill_once,
            [("u", (str(tmp_path / "marker"), "ok"))],
            config,
        )
        outcome = report.outcomes["u"]
        assert outcome.ok and outcome.attempts == 2
        expected = config.retry_policy().delay("u", 1)
        assert expected >= 0.01  # the policy governed the retry spacing


class TestConfig:
    def test_pool_config_for_none_is_sequential(self):
        assert pool_config_for(None) is None

    def test_pool_config_for_threads_knobs(self):
        config = pool_config_for(4, unit_timeout=2.5, max_retries=3)
        assert config.workers == 4
        assert config.unit_timeout == 2.5
        assert config.max_retries == 3

    def test_pool_config_for_defaults(self):
        config = pool_config_for(2)
        assert config.unit_timeout is None
        assert config.max_retries == PoolConfig().max_retries

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PoolConfig(workers=-1)
        with pytest.raises(ValueError):
            PoolConfig(max_retries=-1)

    def test_describe_mentions_faults(self, tmp_path):
        report = run_units(
            _crash_or_square,
            [("crash", "crash"), ("ok", "z")],
            PoolConfig(workers=2, max_retries=0),
        )
        text = report.describe()
        assert "quarantined" in text and "faults" in text


class TestStructuredCategories:
    """Faults carry the raising exception's fully qualified class name.

    Regression: callers used to substring-match the traceback text in
    ``cause()`` to tell budget exhaustion from genuine crashes, which any
    message mentioning an exception name could spoof.
    """

    def test_helper_accepts_instances_and_classes(self):
        from repro.core.valence import ExplorationLimitExceeded
        from repro.resilience.pool import exception_category

        assert exception_category(ValueError("x")) == "builtins.ValueError"
        assert exception_category(ValueError) == "builtins.ValueError"
        assert (
            exception_category(ExplorationLimitExceeded)
            == "repro.core.valence.ExplorationLimitExceeded"
        )

    def test_parallel_error_outcome_carries_category(self):
        report = run_units(
            _always_raise, [("bad", 1)], PoolConfig(workers=2, max_retries=0)
        )
        bad = report.outcomes["bad"]
        assert bad.error_category() == "builtins.RuntimeError"
        assert all(f.category == "builtins.RuntimeError" for f in bad.faults)

    def test_serial_error_outcome_carries_category(self):
        report = run_units(
            _always_raise, [("bad", 1)], PoolConfig(workers=1, max_retries=0)
        )
        assert report.outcomes["bad"].error_category() == "builtins.RuntimeError"

    def test_success_has_no_category(self):
        report = run_units(_square, [("ok", 3)], PoolConfig(workers=2))
        assert report.outcomes["ok"].error_category() is None

    def test_process_crash_has_no_category(self):
        report = run_units(
            _crash_or_square,
            [("crash", "crash")],
            PoolConfig(workers=2, max_retries=0),
        )
        crashed = report.outcomes["crash"]
        assert crashed.quarantined
        assert crashed.error_category() is None


# -- shared context, spawn accounting, stealing ------------------------------

class ScalingContext:
    """Picklable shared context: scales payloads, journals warmups.

    ``warmup`` appends one line to a per-pid file, so a test can count
    how many times each worker process warmed up (the contract: once).
    """

    def __init__(self, factor, marker_dir=None):
        self.factor = factor
        self.marker_dir = marker_dir

    def warmup(self):
        if self.marker_dir is not None:
            path = os.path.join(self.marker_dir, f"warm-{os.getpid()}")
            with open(path, "a") as fh:
                fh.write("warm\n")


def _scale(payload, context):
    return payload * context.factor


class TestSharedContext:
    def test_context_threaded_to_every_unit(self):
        units = [(f"u{i}", i) for i in range(6)]
        report = run_units(
            _scale, units, PoolConfig(workers=2), context=ScalingContext(10)
        )
        assert [report.value(k) for k, _ in units] == [
            0, 10, 20, 30, 40, 50,
        ]

    def test_warmup_runs_once_per_worker_process(self, tmp_path):
        context = ScalingContext(2, marker_dir=str(tmp_path))
        units = [(f"u{i}", i) for i in range(8)]
        run_units(_scale, units, PoolConfig(workers=2), context=context)
        journals = list(tmp_path.iterdir())
        assert 1 <= len(journals) <= 2  # one file per worker that spawned
        for journal in journals:
            assert journal.read_text() == "warm\n"  # exactly once each

    def test_serial_path_shares_the_contract(self, tmp_path):
        context = ScalingContext(3, marker_dir=str(tmp_path))
        report = run_units(
            _scale, [("u", 7)], PoolConfig(workers=1), context=context
        )
        assert report.value("u") == 21
        warm = tmp_path / f"warm-{os.getpid()}"
        assert warm.read_text() == "warm\n"


class TestSpawnAccounting:
    def test_parallel_run_reports_spawn_window(self):
        report = run_units(
            _square, [(f"u{i}", i) for i in range(4)], PoolConfig(workers=2)
        )
        assert 0.0 < report.spawn_seconds <= report.seconds

    def test_serial_run_has_no_spawn_cost(self):
        report = run_units(_square, [("u", 2)], PoolConfig(workers=1))
        assert report.spawn_seconds == 0.0

    def test_report_sink_receives_the_final_report(self):
        seen = []
        config = PoolConfig(workers=2, report_sink=seen.append)
        report = run_units(_square, [("u", 3)], config)
        assert seen == [report]

    def test_report_sink_fires_on_serial_and_empty_runs(self):
        seen = []
        run_units(
            _square, [("u", 3)], PoolConfig(workers=1, report_sink=seen.append)
        )
        run_units(
            _square, [], PoolConfig(workers=2, report_sink=seen.append)
        )
        assert len(seen) == 2 and seen[1].outcomes == {}


class TestWorkStealing:
    def test_static_schedule_completes_all_units(self):
        units = [(f"u{i}", i) for i in range(8)]
        report = run_units(
            _square, units, PoolConfig(workers=3, steal=False)
        )
        assert [report.value(k) for k, _ in units] == [
            i * i for i in range(8)
        ]

    def test_static_schedule_survives_a_crash(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        report = run_units(
            _kill_once,
            [("flaky", (marker, 42)), ("ok", (marker + "-other", 7))],
            PoolConfig(
                workers=2, max_retries=2, retry_backoff=0.01, steal=False
            ),
        )
        assert report.value("flaky") == 42
        assert report.outcomes["flaky"].attempts == 2

    def test_pool_config_for_steal_knob(self):
        assert pool_config_for(4).steal is True
        assert pool_config_for(4, steal=False).steal is False
        assert pool_config_for(4, steal=True).steal is True
