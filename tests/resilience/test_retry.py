"""Unit tests for the shared retry/deadline vocabulary.

RetryPolicy's jitter must be deterministic per (seed, key, attempt) —
the chaos harness depends on recovery being a pure function of
configuration — while still spreading different keys apart so retries
do not stampede in lockstep.
"""

import pickle
import time

import pytest

from repro.resilience.retry import Deadline, RetryPolicy


class TestRetryPolicy:
    def test_should_retry_bounds(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_zero_retries_never_retries(self):
        assert not RetryPolicy(max_retries=0).should_retry(1)

    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert policy.delay("k", 1) == pytest.approx(0.1)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 3) == pytest.approx(0.4)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            d = policy.delay("unit", attempt)
            assert base <= d < base * 1.5

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(seed=7).delay("unit:x", 1)
        b = RetryPolicy(seed=7).delay("unit:x", 1)
        assert a == b

    def test_jitter_differs_across_keys(self):
        policy = RetryPolicy(seed=0)
        delays = {policy.delay(f"unit:{i}", 1) for i in range(16)}
        assert len(delays) == 16  # SHA-256 spread: collisions ~impossible

    def test_jitter_differs_across_seeds(self):
        assert RetryPolicy(seed=0).delay("k", 1) != RetryPolicy(seed=1).delay(
            "k", 1
        )

    def test_fraction_range(self):
        policy = RetryPolicy()
        for i in range(64):
            assert 0.0 <= policy.fraction(f"k{i}", 1) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.5)

    def test_picklable_and_stable_across_roundtrip(self):
        policy = RetryPolicy(seed=3)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy
        assert clone.delay("k", 2) == policy.delay("k", 2)


class TestDeadline:
    def test_never_never_expires(self):
        d = Deadline.never()
        assert d.unbounded
        assert not d.expired()
        assert d.remaining() is None

    def test_after_none_is_never(self):
        assert Deadline.after(None).unbounded

    def test_expiry(self):
        d = Deadline.after(10.0)
        now = time.monotonic()
        assert not d.expired(now)
        assert d.expired(now + 11.0)

    def test_remaining_clamps_at_zero(self):
        d = Deadline.after(0.5)
        now = time.monotonic()
        assert d.remaining(now) == pytest.approx(0.5, abs=0.05)
        assert d.remaining(now + 2.0) == 0.0

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Deadline.never().at = 1.0
