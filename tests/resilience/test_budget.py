"""Unit tests for budgets, meters and graceful checker degradation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.checker import ConsensusChecker, Verdict
from repro.core.valence import ExplorationLimitExceeded
from repro.resilience.budget import (
    Budget,
    BudgetStats,
    LIMIT_EDGES,
    LIMIT_INTERRUPTED,
    LIMIT_STATES,
    LIMIT_TIME,
    merge_stats,
)
from tests.conftest import ToySystem


class TestBudgetOf:
    def test_int_coerces(self):
        b = Budget.of(100)
        assert b.max_states == 100 and b.max_seconds is None

    def test_budget_passes_through(self):
        b = Budget(max_states=5, max_edges=7)
        assert Budget.of(b) is b

    def test_none_uses_default(self):
        assert Budget.of(None, default=42).max_states == 42
        assert Budget.of(None).max_states is None

    def test_unlimited(self):
        b = Budget.unlimited()
        assert b.describe() == "unlimited"
        meter = b.meter()
        for _ in range(1000):
            assert meter.charge_state() is None

    def test_describe_lists_limits(self):
        text = Budget(max_states=10, max_seconds=2.0).describe()
        assert "states<=10" in text and "time<=2s" in text

    @pytest.mark.parametrize(
        "limit, expected_max_states",
        [
            (0, 0),
            (-1, -1),
            (7.9, 7),
            (7.0, 7),
            (True, 1),
        ],
        ids=["zero", "negative", "float-truncates", "float-exact", "bool"],
    )
    def test_coercion_edge_cases(self, limit, expected_max_states):
        assert Budget.of(limit).max_states == expected_max_states

    @pytest.mark.parametrize("limit", [0, -1], ids=["zero", "negative"])
    def test_zero_and_negative_trip_immediately(self, limit):
        meter = Budget.of(limit).meter()
        assert meter.charge_state() == LIMIT_STATES

    def test_budget_passthrough_ignores_default(self):
        b = Budget(max_states=5)
        assert Budget.of(b, default=1_000_000) is b

    def test_none_with_none_default_is_unlimited(self):
        meter = Budget.of(None).meter()
        for _ in range(10_000):
            assert meter.charge_state() is None


class TestBudgetSplit:
    def test_counts_partition_exactly(self):
        shards = Budget(max_states=10, max_edges=7).split(3)
        assert [s.max_states for s in shards] == [4, 3, 3]
        assert [s.max_edges for s in shards] == [3, 2, 2]
        assert sum(s.max_states for s in shards) == 10
        assert sum(s.max_edges for s in shards) == 7

    def test_no_remainder_over_allocation(self):
        # The historical ceiling division handed every shard
        # ceil(limit/shards): a 10-state budget split 3 ways authorized
        # 12 states in aggregate.  The partition must never exceed the
        # parent.
        shards = Budget(max_states=10).split(3)
        assert sum(s.max_states for s in shards) == 10

    def test_single_shard_is_identity(self):
        b = Budget(max_states=10)
        assert b.split(1) == (b,)
        assert b.split(1)[0] is b

    def test_unlimited_stays_unlimited(self):
        shards = Budget.unlimited().split(4)
        assert len(shards) == 4
        assert all(s.max_states is None for s in shards)
        assert all(s.max_edges is None for s in shards)

    def test_limit_smaller_than_shard_count(self):
        # 2 states over 8 shards: two shards get 1, six get 0 (which
        # trip on their first charge — what the parent would have done).
        shards = Budget(max_states=2).split(8)
        assert [s.max_states for s in shards] == [1, 1, 0, 0, 0, 0, 0, 0]
        assert shards[-1].meter().charge_state() == LIMIT_STATES

    def test_deadline_shared_not_extended(self):
        b = Budget(max_seconds=60.0)
        for shard in b.split(4):
            assert shard.deadline == b.deadline
            assert shard.max_seconds == b.max_seconds

    @given(
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
        edges=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
        memory=st.one_of(
            st.none(), st.integers(min_value=0, max_value=10**9)
        ),
        shards=st.integers(min_value=1, max_value=64),
    )
    def test_property_children_sum_to_parent(
        self, limit, edges, memory, shards
    ):
        parent = Budget(
            max_states=limit, max_edges=edges, max_memory_bytes=memory
        )
        children = parent.split(shards)
        assert len(children) == shards
        for name in ("max_states", "max_edges", "max_memory_bytes"):
            parts = [getattr(c, name) for c in children]
            total = getattr(parent, name)
            if total is None:
                assert all(p is None for p in parts)
            else:
                assert sum(parts) == total
                # Remainder spreads one-per-shard over the leading
                # shards: the allocation is monotone non-increasing and
                # never varies by more than one unit.
                assert parts == sorted(parts, reverse=True)
                assert parts[0] - parts[-1] <= 1


class TestMergeStats:
    def test_counters_sum_and_clock_maxes(self):
        merged = merge_stats(
            [
                BudgetStats(states=3, edges=5, seconds=1.0, memory_bytes=10),
                BudgetStats(states=4, edges=6, seconds=2.5, memory_bytes=20),
            ]
        )
        assert merged.states == 7 and merged.edges == 11
        assert merged.seconds == 2.5
        assert merged.memory_bytes == 30

    def test_limit_is_first_in_shard_order(self):
        merged = merge_stats(
            [
                BudgetStats(0, 0, 0.0, 0, limit=None),
                BudgetStats(0, 0, 0.0, 0, limit=LIMIT_STATES),
                BudgetStats(0, 0, 0.0, 0, limit=LIMIT_EDGES),
            ]
        )
        assert merged.limit == LIMIT_STATES

    def test_empty_merges_to_zero(self):
        merged = merge_stats([])
        assert merged.states == 0 and merged.limit is None


class TestMeter:
    def test_states_limit_trips(self):
        meter = Budget(max_states=3).meter()
        assert meter.charge_state() is None
        assert meter.charge_state() is None
        assert meter.charge_state() is None
        assert meter.charge_state() == LIMIT_STATES
        assert meter.tripped == LIMIT_STATES

    def test_edges_limit_trips(self):
        meter = Budget(max_edges=2).meter()
        assert meter.charge_edge() is None
        assert meter.charge_edge() is None
        assert meter.charge_edge() == LIMIT_EDGES

    def test_deadline_trips_on_poll(self):
        meter = Budget(max_seconds=0.0).meter()
        assert meter.poll() == LIMIT_TIME

    def test_deadline_is_anchored_at_budget_construction(self):
        # Two meters from the same budget share one absolute deadline —
        # the CLI --timeout bounds the whole command, not each analysis.
        budget = Budget(max_seconds=0.0)
        assert budget.meter().poll() == LIMIT_TIME
        assert budget.meter().poll() == LIMIT_TIME

    def test_memory_estimate_and_limit(self):
        meter = Budget(max_memory_bytes=1).meter()
        meter.charge_state(("some", "state", "tuple"))
        assert meter.memory_estimate() > 1
        assert meter.poll() == "memory"

    def test_mark_interrupted(self):
        meter = Budget().meter()
        assert meter.mark_interrupted() == LIMIT_INTERRUPTED
        assert meter.stats().limit == LIMIT_INTERRUPTED

    def test_stats_snapshot(self):
        meter = Budget(max_states=1).meter()
        meter.charge_state()
        meter.charge_state()
        stats = meter.stats(frontier=4)
        assert isinstance(stats, BudgetStats)
        assert stats.states == 2 and stats.limit == LIMIT_STATES
        assert stats.frontier == 4
        assert "stopped by states limit" in stats.describe()


def _long_chain(length=50, decide_at_end=True):
    edges = {f"s{i}": [("n", f"s{i+1}")] for i in range(length)}
    edges[f"s{length}"] = [("s", f"s{length}")]
    decisions = (
        {f"s{length}": {0: 0, 1: 0}} if decide_at_end else {}
    )
    return ToySystem(edges=edges, decisions=decisions)


class TestGracefulChecker:
    def test_budget_trip_returns_unknown_with_stats(self):
        sys_ = _long_chain()
        checker = ConsensusChecker(sys_, max_states=10)
        report = checker.check(sys_.state("s0"), inputs=(0, 0))
        assert report.verdict is Verdict.UNKNOWN
        assert report.inconclusive and not report.refuted
        assert not report.satisfied
        assert report.budget_stats is not None
        assert report.budget_stats.limit == LIMIT_STATES
        assert report.budget_stats.frontier > 0
        assert report.checkpoint is not None

    def test_strict_restores_the_exception(self):
        sys_ = _long_chain()
        checker = ConsensusChecker(sys_, max_states=10, strict=True)
        with pytest.raises(ExplorationLimitExceeded):
            checker.check(sys_.state("s0"), inputs=(0, 0))

    def test_violation_before_trip_is_still_definitive(self):
        # A violating state within the first few steps must be reported
        # as REFUTED even under a budget that would trip soon after.
        sys_ = ToySystem(
            edges={
                "x": [("a", "bad")],
                "bad": [("s", "bad")],
            },
            decisions={"bad": {0: 0, 1: 1}},
        )
        report = ConsensusChecker(sys_, max_states=2).check(
            sys_.state("x"), inputs=(0, 1)
        )
        assert report.verdict is Verdict.AGREEMENT
        assert report.refuted

    def test_unknown_never_reported_satisfied(self):
        # Budget smaller than the space: the checker must not claim
        # SATISFIED for the part it saw.
        sys_ = _long_chain()
        report = ConsensusChecker(sys_, max_states=5).check(
            sys_.state("s0"), inputs=(0, 0)
        )
        assert not report.satisfied and report.verdict is Verdict.UNKNOWN

    def test_full_budget_reports_satisfied_with_stats(self):
        sys_ = _long_chain()
        report = ConsensusChecker(sys_).check(sys_.state("s0"), inputs=(0, 0))
        assert report.satisfied
        assert report.budget_stats is not None
        assert report.budget_stats.limit is None


class _InterruptingSystem(ToySystem):
    """Raises KeyboardInterrupt from the k-th successors() call."""

    def __init__(self, *args, interrupt_after=3, **kwargs):
        super().__init__(*args, **kwargs)
        self._calls = 0
        self._interrupt_after = interrupt_after

    def successors(self, state):
        self._calls += 1
        if self._calls == self._interrupt_after:
            raise KeyboardInterrupt
        return super().successors(state)


class TestKeyboardInterrupt:
    def test_interrupt_degrades_to_unknown_checkpoint(self):
        edges = {f"s{i}": [("n", f"s{i+1}")] for i in range(20)}
        edges["s20"] = [("s", "s20")]
        sys_ = _InterruptingSystem(
            edges=edges,
            decisions={"s20": {0: 0, 1: 0}},
            interrupt_after=5,
        )
        report = ConsensusChecker(sys_).check(sys_.state("s0"), inputs=(0, 0))
        assert report.verdict is Verdict.UNKNOWN
        assert report.interrupted
        assert report.budget_stats.limit == LIMIT_INTERRUPTED
        assert report.checkpoint is not None

    def test_interrupt_strict_reraises(self):
        sys_ = _InterruptingSystem(
            edges={"x": [("s", "x")]}, interrupt_after=1
        )
        with pytest.raises(KeyboardInterrupt):
            ConsensusChecker(sys_, strict=True).check(
                sys_.state("x"), inputs=(0, 0)
            )
