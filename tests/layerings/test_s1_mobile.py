"""Unit tests for the S_1 layering over M^mf (Lemma 5.1 structure)."""

import pytest

from repro.core.similarity import similar, similarity_witnesses
from repro.core.state import agree_modulo
from repro.core.valence import ValenceAnalyzer
from repro.layerings.base import verify_layering_embedding
from repro.layerings.s1_mobile import S1MobileLayering, similarity_chain
from repro.models.mobile import MobileModel, prefix_action
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.floodset import FloodSet
from repro.protocols.full_information import FullInformationProtocol


@pytest.fixture
def layering():
    return S1MobileLayering(MobileModel(FullInformationProtocol(3), 3))


class TestStructure:
    def test_requires_mobile_model(self):
        with pytest.raises(TypeError):
            S1MobileLayering(SharedMemoryModel.__new__(SharedMemoryModel))

    def test_action_count(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        # n * (n+1) = 12 labelled actions
        assert len(layering.layer_actions(state)) == 12

    def test_distinct_successors_bounded(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        succs = {child for _, child in layering.successors(state)}
        # duplicates collapse: (j,0) coincide, (j,[k]) with j<k dedupe
        assert len(succs) <= 12

    def test_embedding(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for action in layering.layer_actions(state):
            trace = verify_layering_embedding(layering, state, action)
            assert len(trace) == 2  # S_1 actions are primitive


class TestSimilarityChain:
    def test_chain_covers_layer(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        pairs = similarity_chain(layering, state)
        touched = {a for pair in pairs for a in pair}
        assert touched == set(layering.layer_actions(state))

    def test_every_pair_similar_or_equal(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for a, b in similarity_chain(layering, state):
            x = layering.apply(state, a)
            y = layering.apply(state, b)
            assert x == y or similar(x, y, layering), (a, b)

    def test_chain_step_witness_is_flipped_process(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        # (j,[k]) vs (j,[k+1]) differ exactly at process k (when k != j)
        x = layering.apply(state, prefix_action(0, 1))
        y = layering.apply(state, prefix_action(0, 2))
        assert agree_modulo(x, y, 1)
        assert 1 in similarity_witnesses(x, y, layering)

    def test_self_prefix_steps_equal(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        x = layering.apply(state, prefix_action(0, 0))
        y = layering.apply(state, prefix_action(0, 1))
        assert x == y  # dropping only the self-message changes nothing


class TestValenceConnectivity:
    def test_layer_valence_connected_with_decider(self):
        from repro.protocols.full_information import decide_min_observed

        fi = FullInformationProtocol(2, decide_min_observed, "min")
        layering = S1MobileLayering(MobileModel(fi, 3))
        analyzer = ValenceAnalyzer(layering)
        state = layering.model.initial_state((0, 1, 1))
        from repro.core.connectivity import is_valence_connected

        layer = [child for _, child in layering.successors(state)]
        assert is_valence_connected(layer, analyzer)

    def test_nonfaulty_under_delegates(self, layering):
        assert layering.nonfaulty_under(prefix_action(0, 3)) == frozenset(
            {1, 2}
        )
        assert layering.nonfaulty_under(prefix_action(0, 0)) == frozenset(
            {0, 1, 2}
        )
