"""Unit tests for the S^t layering (Section 6)."""

import pytest

from repro.core.valence import ValenceAnalyzer
from repro.layerings.base import verify_layering_embedding
from repro.layerings.st_synchronous import StSynchronousLayering, st_action
from repro.models.mobile import MobileModel
from repro.models.sync import NO_FAILURE, SynchronousModel, fail_action
from repro.protocols.floodset import FloodSet


@pytest.fixture
def layering():
    return StSynchronousLayering(SynchronousModel(FloodSet(2), 3, 1))


class TestStructure:
    def test_requires_sync_model(self):
        with pytest.raises(TypeError):
            StSynchronousLayering(MobileModel(FloodSet(2), 3))

    def test_full_action_set_below_budget(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        assert len(layering.layer_actions(state)) == 12  # n(n+1)

    def test_only_no_failure_at_budget(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        failed = layering.apply(state, st_action(0, 3))
        assert layering.model.failed_at(failed) == frozenset({0})
        assert layering.layer_actions(failed) == [st_action(0, 0)]

    def test_embedding(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for action in layering.layer_actions(state):
            verify_layering_embedding(layering, state, action)


class TestPrimitiveMapping:
    def test_effective_prefix_strips_self(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        # (0,[1]) = block {0} \ {0} = nothing: no failure recorded
        assert (
            layering.primitive_for(state, st_action(0, 1)) == NO_FAILURE
        )

    def test_real_failure_mapped(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        prim = layering.primitive_for(state, st_action(0, 2))
        assert prim == fail_action((0, frozenset({1})))

    def test_failed_process_action_is_noop(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        failed = layering.apply(state, st_action(0, 3))
        # at the budget the only layer action is failure-free anyway;
        # check primitive_for's failed-j branch directly:
        assert (
            layering.primitive_for(failed, st_action(0, 2)) == NO_FAILURE
        )

    def test_at_most_one_new_failure_per_layer(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for action in layering.layer_actions(state):
            child = layering.apply(state, action)
            assert len(layering.model.failed_at(child)) <= 1


class TestValenceStructure:
    def test_unanimous_univalent(self, layering):
        analyzer = ValenceAnalyzer(layering)
        zero = layering.model.initial_state((0, 0, 0))
        assert analyzer.valence(zero).univalent_value() == 0

    def test_mixed_input_bivalent_for_fast_protocol(self):
        # FloodSet(1) under S^t (t=1): mixed inputs are bivalent — the
        # agreement violation is reachable in both directions.
        layering = StSynchronousLayering(
            SynchronousModel(FloodSet(1), 3, 1)
        )
        analyzer = ValenceAnalyzer(layering)
        state = layering.model.initial_state((0, 1, 1))
        assert analyzer.valence(state).bivalent

    def test_budget_exhausted_states_univalent(self, layering):
        # After t failures the extension is unique, so states there are
        # univalent (the paper's observation inside Lemma 6.2's proof).
        analyzer = ValenceAnalyzer(layering)
        state = layering.model.initial_state((0, 1, 1))
        failed = layering.apply(state, st_action(0, 3))
        assert analyzer.valence(failed).univalent

    def test_nonfaulty_under(self, layering):
        assert layering.nonfaulty_under(st_action(0, 3)) == frozenset({1, 2})
        assert layering.nonfaulty_under(st_action(0, 1)) == frozenset(
            {0, 1, 2}
        )


class TestLayerClassStructure:
    """The refined-similarity structure of an S^t layer (DESIGN.md §4b):
    per-failure classes are internally chained, the clean state is
    isolated, and yet a single class already carries both valences —
    which is why Lemma 6.2's conclusion survives the connectivity gap."""

    def test_layer_not_similarity_connected_at_budget_edge(self):
        from repro.core.similarity import is_similarity_connected

        layering = StSynchronousLayering(
            SynchronousModel(FloodSet(1), 3, 1)
        )
        state = layering.model.initial_state((0, 1, 1))
        layer = list(
            dict.fromkeys(c for _, c in layering.successors(state))
        )
        assert not is_similarity_connected(layer, layering)

    def test_within_class_chain_similar(self):
        from repro.core.similarity import similar

        layering = StSynchronousLayering(
            SynchronousModel(FloodSet(1), 3, 1)
        )
        state = layering.model.initial_state((0, 1, 1))
        # within the j=0 class (failed records equal): chained
        x = layering.apply(state, st_action(0, 2))
        y = layering.apply(state, st_action(0, 3))
        assert similar(x, y, layering)
        # crossing the class boundary (clean vs one-failed, local diff at
        # a process other than the failed one): NOT similar — the break
        # DESIGN.md §4b documents
        clean = layering.apply(state, st_action(0, 1))  # effective no-op
        first_loss = layering.apply(state, st_action(0, 2))
        assert not similar(clean, first_loss, layering)

    def test_some_class_carries_both_valences(self):
        layering = StSynchronousLayering(
            SynchronousModel(FloodSet(1), 3, 1)
        )
        analyzer = ValenceAnalyzer(layering)
        state = layering.model.initial_state((0, 1, 1))
        # class of j=0 (the unique zero-holder): its chain runs from the
        # mild omission to full silencing and crosses the valence flip
        values_seen = set()
        for k in range(4):
            child = layering.apply(state, st_action(0, k))
            result = analyzer.valence(child)
            if result.univalent:
                values_seen.add(result.univalent_value())
        assert values_seen == {0, 1}
