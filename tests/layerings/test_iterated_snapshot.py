"""Unit tests for the iterated-immediate-snapshot layering."""

import pytest

from repro.core.checker import ConsensusChecker, Verdict
from repro.core.similarity import similar, similarity_witnesses
from repro.core.state import agree_modulo
from repro.core.valence import ValenceAnalyzer
from repro.layerings.base import verify_layering_embedding
from repro.layerings.iterated_snapshot import (
    IteratedSnapshotLayering,
    blocks_schedule,
    short_blocks_schedule,
    solo_diamond,
    split_merge_edges,
)
from repro.models.shared_memory import SharedMemoryModel
from repro.models.snapshot import SnapshotMemoryModel
from repro.protocols.candidates import QuorumDecide, WaitForAll
from repro.protocols.full_information import FullInformationProtocol
from repro.util.orderings import ordered_partitions


@pytest.fixture
def layering():
    return IteratedSnapshotLayering(
        SnapshotMemoryModel(FullInformationProtocol(4), 3)
    )


class TestStructure:
    def test_requires_snapshot_model(self):
        with pytest.raises(TypeError):
            IteratedSnapshotLayering(
                SharedMemoryModel(QuorumDecide(2), 3)
            )

    def test_action_count(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        # 13 ordered partitions of 3 + 3 * 3 ordered partitions of 2
        assert len(layering.layer_actions(state)) == 22

    def test_ordered_partition_counts(self):
        assert len(ordered_partitions(range(3))) == 13
        assert len(ordered_partitions(range(4))) == 75
        assert ordered_partitions([]) == [()]

    def test_embedding(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for action in layering.layer_actions(state):
            trace = verify_layering_embedding(layering, state, action)
            assert layering.model.at_phase_boundary(trace[-1])

    def test_unknown_action_rejected(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        with pytest.raises(ValueError):
            layering.expand(state, ("spiral", ()))


class TestConnectivity:
    def test_split_merge_edges_similar(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for a, b in split_merge_edges(3):
            x = layering.apply(state, a)
            y = layering.apply(state, b)
            assert x == y or similar(x, y, layering), (a, b)

    def test_split_merge_witness_is_singleton(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        # [{0}, {1, 2}] merged to [{0, 1, 2}]: witness must be 0
        split = blocks_schedule(
            [frozenset({0}), frozenset({1, 2})]
        )
        merged = blocks_schedule([frozenset({0, 1, 2})])
        x = layering.apply(state, split)
        y = layering.apply(state, merged)
        assert agree_modulo(x, y, 0)
        assert 0 in similarity_witnesses(x, y, layering)

    def test_full_layer_similarity_connected_without_shorts(self, layering):
        from repro.core.similarity import is_similarity_connected

        state = layering.model.initial_state((0, 1, 1))
        fulls = [
            layering.apply(state, a)
            for a in layering.layer_actions(state)
            if a[0] == "blocks"
        ]
        assert is_similarity_connected(fulls, layering)

    @pytest.mark.parametrize("j", [0, 1, 2])
    def test_solo_diamond_equality(self, layering, j):
        state = layering.model.initial_state((0, 1, 1))
        left, right = solo_diamond(j, 3)
        y = state
        for action in left:
            y = layering.apply(y, action)
        y_prime = state
        for action in right:
            y_prime = layering.apply(y_prime, action)
        assert y == y_prime


class TestImpossibility:
    def test_quorum_defeated(self):
        model = SnapshotMemoryModel(QuorumDecide(2), 3)
        layering = IteratedSnapshotLayering(model)
        report = ConsensusChecker(layering, 400_000).check_all(model)
        assert report.verdict is Verdict.AGREEMENT

    def test_waitforall_starved(self):
        model = SnapshotMemoryModel(WaitForAll(), 3)
        layering = IteratedSnapshotLayering(model)
        report = ConsensusChecker(layering, 400_000).check_all(model)
        assert report.verdict is Verdict.DECISION
        cycle_kinds = {a[0] for a in report.cycle.actions}
        assert cycle_kinds <= {"short-blocks", "blocks"}

    def test_layer_valence_connected(self):
        model = SnapshotMemoryModel(QuorumDecide(2), 3)
        layering = IteratedSnapshotLayering(model)
        analyzer = ValenceAnalyzer(layering, 400_000)
        state = model.initial_state((0, 1, 1))
        from repro.core.connectivity import is_valence_connected

        layer = [child for _, child in layering.successors(state)]
        assert is_valence_connected(layer, analyzer)

    def test_nonfaulty_under(self, layering):
        short = short_blocks_schedule([frozenset({0, 2})])
        assert layering.nonfaulty_under(short) == frozenset({0, 2})
        full = blocks_schedule([frozenset({0, 1, 2})])
        assert layering.nonfaulty_under(full) == frozenset({0, 1, 2})
