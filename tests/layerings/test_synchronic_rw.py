"""Unit tests for the synchronic layering S^rw (Lemma 5.3 structure)."""

import pytest

from repro.core.faulty import check_crash_display
from repro.core.similarity import similar, similarity_witnesses
from repro.core.state import agree_modulo
from repro.layerings.base import verify_layering_embedding
from repro.layerings.synchronic_rw import (
    SynchronicRWLayering,
    absent_diamond,
    absent_rw,
    sync_rw,
    y_chain,
)
from repro.models.mobile import MobileModel
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.candidates import QuorumDecide
from repro.protocols.full_information import FullInformationProtocol


@pytest.fixture
def layering():
    return SynchronicRWLayering(
        SharedMemoryModel(FullInformationProtocol(4), 3)
    )


class TestStructure:
    def test_requires_rw_model(self):
        with pytest.raises(TypeError):
            SynchronicRWLayering(MobileModel(QuorumDecide(2), 3))

    def test_action_count(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        # n(n+1) slow actions + n absent actions = 12 + 3
        assert len(layering.layer_actions(state)) == 15

    def test_embedding_all_actions(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for action in layering.layer_actions(state):
            trace = verify_layering_embedding(layering, state, action)
            assert layering.model.at_phase_boundary(trace[-1])

    def test_fairness_all_but_one_move(self, layering):
        """Every layer gives all but at most one process a full phase."""
        model = layering.model
        state = model.initial_state((0, 1, 1))
        for action in layering.layer_actions(state):
            child = layering.apply(state, action)
            moved = sum(
                model.proto_local(child, i) != model.proto_local(state, i)
                for i in range(3)
            )
            assert moved >= 2


class TestYChain:
    def test_k0_independent_of_j(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        results = {layering.apply(state, sync_rw(j, 0)) for j in range(3)}
        assert len(results) == 1

    def test_chain_pairs_similar_or_equal(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for a, b in y_chain(3):
            x = layering.apply(state, a)
            y = layering.apply(state, b)
            assert x == y or similar(x, y, layering), (a, b)

    def test_flip_witness_is_k(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        x = layering.apply(state, sync_rw(0, 1))
        y = layering.apply(state, sync_rw(0, 2))
        # proper process 1 flips between early (R1) and late (R2) reads
        assert agree_modulo(x, y, 1)
        assert 1 in similarity_witnesses(x, y, layering)

    def test_chain_crash_display(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        x = layering.apply(state, sync_rw(0, 1))
        y = layering.apply(state, sync_rw(0, 2))
        assert check_crash_display(layering, x, y, 1, steps=13)


class TestAbsentDiamond:
    """The paper's y = x(j,n)(j,A) vs y' = x(j,A)(j,0) argument."""

    @pytest.mark.parametrize("j", [0, 1, 2])
    def test_diamond_endpoints_agree_modulo_j(self, layering, j):
        state = layering.model.initial_state((0, 1, 1))
        left, right = absent_diamond(j, 3)
        y = state
        for action in left:
            y = layering.apply(y, action)
        y_prime = state
        for action in right:
            y_prime = layering.apply(y_prime, action)
        assert agree_modulo(y, y_prime, j)

    def test_diamond_register_j_same_value(self, layering):
        """j's only write carries its phase-start value in both orders."""
        model = layering.model
        state = model.initial_state((0, 1, 1))
        left, right = absent_diamond(0, 3)
        y = state
        for action in left:
            y = layering.apply(y, action)
        y_prime = state
        for action in right:
            y_prime = layering.apply(y_prime, action)
        assert model.registers(y)[0] == model.registers(y_prime)[0]

    def test_absent_state_differs_from_slow_state(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        slow = layering.apply(state, sync_rw(0, 3))
        absent = layering.apply(state, absent_rw(0))
        assert slow != absent
        # and they are NOT similar: both j's local and the registers
        # differ (the paper's point about why valence is needed here)
        assert not similar(slow, absent, layering)


class TestNonfaultyUnder:
    def test_absent_crashes_one(self, layering):
        assert layering.nonfaulty_under(absent_rw(1)) == frozenset({0, 2})

    def test_slow_crashes_none(self, layering):
        assert layering.nonfaulty_under(sync_rw(1, 2)) == frozenset(
            {0, 1, 2}
        )
