"""Unit tests for the permutation layering S^per (Section 5.1)."""

from itertools import permutations

import pytest

from repro.core.faulty import agree_modulo_refined
from repro.core.similarity import similar
from repro.layerings.base import verify_layering_embedding
from repro.layerings.permutation import (
    PermutationLayering,
    diamond,
    full_schedule,
    pair_schedule,
    short_schedule,
    transposition_edges,
)
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.candidates import QuorumDecide
from repro.protocols.full_information import FullInformationProtocol


@pytest.fixture
def layering():
    return PermutationLayering(
        AsyncMessagePassingModel(FullInformationProtocol(4), 3)
    )


class TestStructure:
    def test_requires_async_model(self):
        with pytest.raises(TypeError):
            PermutationLayering(SharedMemoryModel(QuorumDecide(2), 3))

    def test_action_counts(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        actions = layering.layer_actions(state)
        fulls = [a for a in actions if a[0] == "full"]
        pairs = [a for a in actions if a[0] == "pair"]
        shorts = [a for a in actions if a[0] == "short"]
        assert len(fulls) == 6  # 3!
        assert len(pairs) == 12  # 3! * (n-1)
        assert len(shorts) == 6  # 3P2

    def test_embedding_all_kinds(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for action in (
            full_schedule((0, 1, 2)),
            short_schedule((2, 0)),
            pair_schedule((0, 1, 2), 1),
        ):
            trace = verify_layering_embedding(layering, state, action)
            assert layering.model.at_phase_boundary(trace[-1])

    def test_unknown_action_rejected(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        with pytest.raises(ValueError):
            layering.expand(state, ("zigzag", (0, 1, 2)))


class TestTranspositionConnectivity:
    """x[..p_k,p_{k+1}..] ~s x[..{p_k,p_{k+1}}..] ~s x[..p_{k+1},p_k..]"""

    @pytest.mark.parametrize("order", list(permutations(range(3))))
    @pytest.mark.parametrize("k", [0, 1])
    def test_both_edges_similar(self, layering, order, k):
        state = layering.model.initial_state((0, 1, 1))
        for a, b in transposition_edges(order, k):
            x = layering.apply(state, a)
            y = layering.apply(state, b)
            assert x == y or similar(x, y, layering), (a, b)

    def test_sequential_vs_pair_witness(self, layering):
        """The witness of [p,q,...] vs [{p,q},...] is q (who missed p's
        current-phase message); channels into q are discounted."""
        state = layering.model.initial_state((0, 1, 1))
        x = layering.apply(state, full_schedule((0, 1, 2)))
        y = layering.apply(state, pair_schedule((0, 1, 2), 0))
        assert agree_modulo_refined(layering.model, x, y, 1)
        assert not agree_modulo_refined(layering.model, x, y, 2)


class TestDiamond:
    """x[p_1..p_n][p_1..p_{n-1}] == x[p_1..p_{n-1}][p_n, p_1..p_{n-1}]"""

    @pytest.mark.parametrize("order", list(permutations(range(3))))
    def test_diamond_equality(self, layering, order):
        state = layering.model.initial_state((0, 1, 1))
        left, right = diamond(order)
        y = state
        for action in left:
            y = layering.apply(y, action)
        y_prime = state
        for action in right:
            y_prime = layering.apply(y_prime, action)
        assert y == y_prime  # exact global-state equality, as the paper says

    def test_full_vs_short_not_similar(self, layering):
        """The paper's remark: x[p1..pn] and x[p1..p_{n-1}] are NOT
        similar — p_n's local and the environment both differ."""
        state = layering.model.initial_state((0, 1, 1))
        order = (0, 1, 2)
        x = layering.apply(state, full_schedule(order))
        y = layering.apply(state, short_schedule(order[:-1]))
        assert x != y
        assert not similar(x, y, layering)


class TestFairness:
    def test_full_schedules_move_everyone(self, layering):
        model = layering.model
        state = model.initial_state((0, 1, 1))
        child = layering.apply(state, full_schedule((2, 1, 0)))
        for i in range(3):
            assert model.proto_local(child, i) != model.proto_local(state, i)

    def test_short_schedule_skips_exactly_one(self, layering):
        model = layering.model
        state = model.initial_state((0, 1, 1))
        child = layering.apply(state, short_schedule((0, 2)))
        assert model.proto_local(child, 1) == model.proto_local(state, 1)
        assert model.proto_local(child, 0) != model.proto_local(state, 0)

    def test_nonfaulty_under(self, layering):
        assert layering.nonfaulty_under(short_schedule((0, 2))) == frozenset(
            {0, 2}
        )
        assert layering.nonfaulty_under(
            pair_schedule((0, 1, 2), 0)
        ) == frozenset({0, 1, 2})
