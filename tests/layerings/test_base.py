"""Unit tests for the layering framework itself."""

import pytest

from repro.layerings.base import Layering, verify_layering_embedding
from repro.layerings.s1_mobile import S1MobileLayering
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.mobile import MobileModel, omit_action
from repro.models.shared_memory import SharedMemoryModel, step_action
from repro.protocols.candidates import QuorumDecide
from repro.protocols.floodset import FloodSet


class BrokenLayering(Layering):
    """Expands to a primitive that is not enabled — must be caught."""

    def layer_actions(self, state):
        return [("broken",)]

    def expand(self, state, action):
        return [("no-such-primitive", 0)]


class WrongFoldLayering(Layering):
    """apply() disagrees with the folded expansion — must be caught."""

    def layer_actions(self, state):
        return [("weird",)]

    def expand(self, state, action):
        return [omit_action(0, ())]

    def apply(self, state, action):
        # deliberately apply a DIFFERENT primitive than expand claims
        return self.model.apply(state, omit_action(0, (1, 2)))


class TestEmbeddingVerification:
    def test_broken_expansion_caught(self):
        model = MobileModel(FloodSet(2), 3)
        layering = BrokenLayering(model)
        state = model.initial_state((0, 1, 1))
        with pytest.raises(AssertionError, match="not enabled"):
            verify_layering_embedding(layering, state, ("broken",))

    def test_wrong_fold_caught(self):
        model = MobileModel(FloodSet(2), 3)
        layering = WrongFoldLayering(model)
        state = model.initial_state((0, 1, 1))
        with pytest.raises(AssertionError, match="disagrees"):
            verify_layering_embedding(layering, state, ("weird",))

    def test_trace_endpoints(self):
        model = SharedMemoryModel(QuorumDecide(2), 3)
        layering = SynchronicRWLayering(model)
        state = model.initial_state((0, 1, 1))
        action = layering.layer_actions(state)[0]
        trace = verify_layering_embedding(layering, state, action)
        assert trace[0] == state
        assert trace[-1] == layering.apply(state, action)
        # the sync action (j=0,k=0): 2 proper writes + 2*3 early... all
        # reads late: 2 writes + 1 j-write + 3 j-reads + 6 late reads
        assert len(trace) == 1 + len(layering.expand(state, action))


class TestSuccessorSystemConformance:
    """Models and layerings both satisfy the analyzer-facing protocol."""

    @pytest.mark.parametrize(
        "system_factory",
        [
            lambda: MobileModel(FloodSet(2), 3),
            lambda: S1MobileLayering(MobileModel(FloodSet(2), 3)),
            lambda: SynchronicRWLayering(
                SharedMemoryModel(QuorumDecide(2), 3)
            ),
        ],
        ids=["model", "s1", "srw"],
    )
    def test_interface(self, system_factory):
        system = system_factory()
        model = getattr(system, "model", system)
        state = model.initial_state((0, 1, 1))
        succs = system.successors(state)
        assert succs
        for action, child in succs:
            assert child.n == 3
            assert isinstance(system.nonfaulty_under(action), frozenset)
        assert isinstance(system.failed_at(state), frozenset)
        assert isinstance(system.decisions(state), dict)

    def test_layering_properties(self):
        layering = S1MobileLayering(MobileModel(FloodSet(2), 3))
        assert layering.n == 3
        assert isinstance(layering.model, MobileModel)
