"""Unit tests for the synchronic message-passing layering."""

import pytest

from repro.core.faulty import agree_modulo_refined, check_crash_display
from repro.core.similarity import similar
from repro.layerings.base import verify_layering_embedding
from repro.layerings.synchronic_mp import (
    SynchronicMPLayering,
    absent_mp,
    sync_mp,
    y_chain,
)
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.candidates import QuorumDecide
from repro.protocols.full_information import FullInformationProtocol


@pytest.fixture
def layering():
    return SynchronicMPLayering(
        AsyncMessagePassingModel(FullInformationProtocol(4), 3)
    )


class TestStructure:
    def test_requires_async_model(self):
        with pytest.raises(TypeError):
            SynchronicMPLayering(
                SharedMemoryModel(QuorumDecide(2), 3)
            )

    def test_action_count(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        assert len(layering.layer_actions(state)) == 15

    def test_embedding_all_actions(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for action in layering.layer_actions(state):
            trace = verify_layering_embedding(layering, state, action)
            assert layering.model.at_phase_boundary(trace[-1])


class TestRoundSemantics:
    def test_k0_independent_of_j(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        results = {layering.apply(state, sync_mp(j, 0)) for j in range(3)}
        assert len(results) == 1

    def test_early_receiver_misses_j(self, layering):
        model = layering.model
        state = model.initial_state((0, 1, 1))
        # (j=0, k=3): all proper receive early, missing 0's send
        child = layering.apply(state, sync_mp(0, 3))
        view1 = model.proto_local(child, 1)
        assert all(src != 0 for src, _ in view1.history[0])
        # but 0's message remains pending for round 2
        assert (0, 1) in model.bag(child)

    def test_late_receiver_hears_j(self, layering):
        model = layering.model
        state = model.initial_state((0, 1, 1))
        # (j=0, k=0): everyone receives after 0's send
        child = layering.apply(state, sync_mp(0, 0))
        view1 = model.proto_local(child, 1)
        assert any(src == 0 for src, _ in view1.history[0])

    def test_absent_process_untouched(self, layering):
        model = layering.model
        state = model.initial_state((0, 1, 1))
        child = layering.apply(state, absent_mp(0))
        assert model.proto_local(child, 0) == model.proto_local(state, 0)

    def test_chain_pairs_similar_or_equal(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        for a, b in y_chain(3):
            x = layering.apply(state, a)
            y = layering.apply(state, b)
            assert x == y or similar(x, y, layering), (a, b)

    def test_chain_crash_display(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        x = layering.apply(state, sync_mp(0, 1))
        y = layering.apply(state, sync_mp(0, 2))
        assert check_crash_display(layering, x, y, 1, steps=12)


class TestAbsentDiamond:
    @pytest.mark.parametrize("j", [0, 1, 2])
    def test_diamond_agrees_modulo_j_refined(self, layering, j):
        from repro.layerings.synchronic_mp import absent_diamond

        state = layering.model.initial_state((0, 1, 1))
        left, right = absent_diamond(j, 3)
        y = state
        for action in left:
            y = layering.apply(y, action)
        y_prime = state
        for action in right:
            y_prime = layering.apply(y_prime, action)
        # the env hook discounts channels INTO j (consumed at different
        # rounds in the two orders); everything else must agree
        assert agree_modulo_refined(layering.model, y, y_prime, j)


class TestNonfaultyUnder:
    def test_absent_crashes_one(self, layering):
        assert layering.nonfaulty_under(absent_mp(2)) == frozenset({0, 1})

    def test_slow_crashes_none(self, layering):
        assert layering.nonfaulty_under(sync_mp(2, 1)) == frozenset(
            {0, 1, 2}
        )
