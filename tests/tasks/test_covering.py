"""Unit tests for coverings, outcomes and generalized valence."""

import pytest

from repro.layerings.permutation import PermutationLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.protocols.candidates import QuorumDecide
from repro.protocols.tasks import EpsilonAgreementProtocol
from repro.tasks.complex import Complex
from repro.tasks.covering import (
    Covering,
    OutcomeAnalyzer,
    OutcomeResult,
    always_valence_connected,
    bipartition_coverings,
    valence_graph_for_covering,
)
from repro.tasks.simplex import Simplex


def sx(values):
    return Simplex.from_values(values)


class TestCovering:
    def test_side_lookup(self):
        cov = Covering(Complex([sx([0, 0])]), Complex([sx([1, 1])]))
        assert sx([0, 0]) in cov.side(0)
        with pytest.raises(ValueError):
            cov.side(2)

    def test_covers(self):
        cov = Covering(Complex([sx([0, 0])]), Complex([sx([1, 1])]))
        assert cov.covers([sx([0, 0]), sx([1, 1])])
        assert not cov.covers([sx([0, 0])])  # side1 uninhabited
        assert not cov.covers([sx([0, 0]), sx([2, 2])])  # uncovered

    def test_faces_covered_via_closure(self):
        cov = Covering(Complex([sx([0, 0])]), Complex([sx([1, 1])]))
        partial = Simplex([(0, 0)])
        assert cov.covers([partial, sx([1, 1])])


class TestBipartitions:
    def test_count(self):
        outcomes = [sx([0, 0]), sx([1, 1]), sx([0, 1])]
        assert len(list(bipartition_coverings(outcomes))) == 3

    def test_single_outcome_no_coverings(self):
        assert list(bipartition_coverings([sx([0, 0])])) == []

    def test_each_is_a_covering(self):
        outcomes = [sx([0, 0]), sx([1, 1]), sx([0, 1])]
        for cov in bipartition_coverings(outcomes):
            assert cov.covers(outcomes)


class TestOutcomeResult:
    def test_valence_for_covering(self):
        cov = Covering(Complex([sx([0, 0])]), Complex([sx([1, 1])]))
        r = OutcomeResult(frozenset({sx([0, 0])}), False)
        assert r.valent_for(cov, 0)
        assert not r.valent_for(cov, 1)
        both = OutcomeResult(frozenset({sx([0, 0]), sx([1, 1])}), False)
        assert both.bivalent_for(cov)


class TestOutcomeAnalyzer:
    def make(self, protocol):
        model = AsyncMessagePassingModel(protocol, 3)
        return PermutationLayering(model), model

    def test_quorum_outcomes_include_disagreement(self):
        layering, model = self.make(QuorumDecide(2))
        analyzer = OutcomeAnalyzer(layering, max_states=300_000)
        result = analyzer.outcome(model.initial_state((0, 1, 1)))
        # full agreement on 0 and on 1 are both reachable...
        values_seen = set()
        for simplex in result.outcomes:
            values_seen |= simplex.values()
        assert values_seen == {0, 1}
        assert not result.diverges  # QuorumDecide always decides

    def test_unanimous_single_outcome_value(self):
        layering, model = self.make(QuorumDecide(2))
        analyzer = OutcomeAnalyzer(layering, max_states=300_000)
        result = analyzer.outcome(model.initial_state((1, 1, 1)))
        for simplex in result.outcomes:
            assert simplex.values() == {1}

    def test_epsilon_protocol_starvation_outcomes(self):
        """Under perpetual short schedules the starved process never
        decides: 2-size outcomes appear alongside the 3-size ones."""
        layering, model = self.make(EpsilonAgreementProtocol())
        analyzer = OutcomeAnalyzer(layering, max_states=500_000)
        result = analyzer.outcome(model.initial_state((0, 1, 1)))
        sizes = {len(s) for s in result.outcomes}
        assert 3 in sizes
        assert 2 in sizes
        assert not result.diverges  # the protocol is 1-resilient

    def test_memoization(self):
        layering, model = self.make(QuorumDecide(2))
        analyzer = OutcomeAnalyzer(layering, max_states=300_000)
        r1 = analyzer.outcome(model.initial_state((0, 1, 1)))
        r2 = analyzer.outcome(model.initial_state((0, 1, 1)))
        assert r1 is r2


class TestAlwaysValenceConnected:
    def test_initial_states_always_connected(self):
        model = AsyncMessagePassingModel(QuorumDecide(2), 3)
        layering = PermutationLayering(model)
        analyzer = OutcomeAnalyzer(layering, max_states=300_000)
        initials = model.initial_states((0, 1))
        assert always_valence_connected(initials, analyzer)

    def test_valence_graph_shape(self):
        model = AsyncMessagePassingModel(QuorumDecide(2), 3)
        layering = PermutationLayering(model)
        analyzer = OutcomeAnalyzer(layering, max_states=300_000)
        zeros = model.initial_state((0, 0, 0))
        ones = model.initial_state((1, 1, 1))
        mixed = model.initial_state((0, 1, 1))
        cov = Covering(
            Complex([sx([0, 0, 0])]), Complex([sx([1, 1, 1])])
        )
        g = valence_graph_for_covering([zeros, ones, mixed], analyzer, cov)
        assert g.has_edge(zeros, mixed)
        assert g.has_edge(ones, mixed)
        assert not g.has_edge(zeros, ones)
