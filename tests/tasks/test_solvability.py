"""Unit tests for the solvability drivers (Theorem 7.2 / Corollary 7.3)."""

import pytest

from repro.core.checker import Verdict
from repro.protocols.candidates import QuorumDecide
from repro.protocols.tasks import DecideOwnInput
from repro.tasks.catalog import binary_consensus, identity_task
from repro.tasks.checker import TaskReport
from repro.tasks.solvability import (
    SolvabilityRow,
    corollary_7_3_row,
    defeat_in_every_model,
    one_resilient_layerings,
    theorem_7_2_consistency,
    verify_protocol_solves,
)


def fake_report(verdict):
    return TaskReport(
        verdict=verdict,
        input_facet=None,
        execution=None,
        cycle=None,
        detail="",
        states_explored=0,
    )


class TestSolvabilityRow:
    def test_no_reports_means_unknown(self):
        row = SolvabilityRow("t", thick_connected=True, reports={})
        assert row.operationally_solved is None
        assert row.consistent_with_characterization

    def test_all_satisfied(self):
        row = SolvabilityRow(
            "t",
            thick_connected=True,
            reports={"m": fake_report(Verdict.SATISFIED)},
        )
        assert row.operationally_solved is True
        assert row.consistent_with_characterization

    def test_inconsistency_detected(self):
        # a verified solver for a non-thick-connected problem would
        # falsify the characterization
        row = SolvabilityRow(
            "t",
            thick_connected=False,
            reports={"m": fake_report(Verdict.SATISFIED)},
        )
        assert not row.consistent_with_characterization

    def test_defeated_solver_is_consistent_either_way(self):
        row = SolvabilityRow(
            "t",
            thick_connected=False,
            reports={"m": fake_report(Verdict.VALIDITY)},
        )
        assert row.operationally_solved is False
        assert row.consistent_with_characterization


class TestTheorem72Consistency:
    def test_solved_requires_thick(self):
        reports = {"m": fake_report(Verdict.SATISFIED)}
        assert theorem_7_2_consistency(None, reports, thick_connected=True)
        assert not theorem_7_2_consistency(
            None, reports, thick_connected=False
        )

    def test_unsolved_always_consistent(self):
        reports = {"m": fake_report(Verdict.DECISION)}
        assert theorem_7_2_consistency(None, reports, thick_connected=False)


class TestDrivers:
    def test_one_resilient_layerings_shape(self):
        systems = one_resilient_layerings(DecideOwnInput(), 3)
        assert set(systems) == {
            "synchronic-rw",
            "synchronic-mp",
            "permutation-mp",
            "iis-snapshot",
        }

    def test_verify_identity_solver(self):
        reports = verify_protocol_solves(
            identity_task(3), DecideOwnInput(), max_states=400_000
        )
        assert all(r.satisfied for r in reports.values())

    def test_defeat_consensus_candidate(self):
        reports = defeat_in_every_model(
            binary_consensus(3), QuorumDecide(2), max_states=400_000
        )
        assert reports
        assert all(not r.satisfied for r in reports.values())

    def test_corollary_row_for_identity(self):
        row = corollary_7_3_row(
            identity_task(3), DecideOwnInput(), max_states=400_000
        )
        assert row.thick_connected
        assert row.operationally_solved is True
        assert row.consistent_with_characterization
