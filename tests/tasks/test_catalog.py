"""Unit tests for the task catalog."""

import pytest

from repro.tasks.catalog import (
    CATALOG,
    EXPECTED_SOLVABLE,
    binary_consensus,
    constant_task,
    epsilon_agreement,
    identity_task,
    k_set_agreement,
    leader_election,
)
from repro.tasks.simplex import Simplex


def sx(values):
    return Simplex.from_values(values)


class TestCatalogShape:
    def test_every_task_has_expectation(self):
        assert set(CATALOG) == set(EXPECTED_SOLVABLE)

    def test_every_factory_builds(self):
        for name, factory in CATALOG.items():
            problem = factory(3)
            assert problem.n == 3
            assert problem.input_facets()


class TestConsensus:
    def test_output_facets(self):
        problem = binary_consensus(3)
        assert len(problem.outputs.facets) == 2

    def test_validity_encoded(self):
        problem = binary_consensus(3)
        assert not problem.acceptable(sx([0, 0, 0]), sx([1, 1, 1]))
        assert problem.acceptable(sx([0, 1, 1]), sx([1, 1, 1]))


class TestElection:
    def test_all_zero_input_excluded(self):
        problem = leader_election(3)
        assert sx([0, 0, 0]) not in problem.inputs

    def test_sole_candidate_forced(self):
        problem = leader_election(3)
        sole = sx([0, 1, 0])  # only process 1 is a candidate
        assert problem.acceptable(sole, sx([1, 1, 1]))
        assert not problem.acceptable(sole, sx([0, 0, 0]))

    def test_multi_candidate_choice(self):
        problem = leader_election(3)
        multi = sx([1, 1, 0])
        assert problem.acceptable(multi, sx([0, 0, 0]))
        assert problem.acceptable(multi, sx([1, 1, 1]))
        assert not problem.acceptable(multi, sx([2, 2, 2]))


class TestKSet:
    def test_k_range_enforced(self):
        with pytest.raises(ValueError):
            k_set_agreement(3, 0)
        with pytest.raises(ValueError):
            k_set_agreement(3, 4)

    def test_two_values_allowed(self):
        problem = k_set_agreement(3, 2)
        rainbow = sx([0, 1, 2])
        assert problem.acceptable(rainbow, sx([0, 1, 1]))
        assert not problem.acceptable(rainbow, sx([0, 1, 2]))

    def test_values_must_be_inputs(self):
        problem = k_set_agreement(3, 2)
        assert not problem.acceptable(sx([0, 0, 1]), sx([2, 2, 2]))


class TestEpsilon:
    def test_unanimous_endpoints(self):
        problem = epsilon_agreement(3)
        assert problem.acceptable(sx([0, 0, 0]), sx([0, 0, 0]))
        assert not problem.acceptable(sx([0, 0, 0]), sx([1, 1, 1]))
        assert problem.acceptable(sx([1, 1, 1]), sx([2, 2, 2]))

    def test_mixed_window(self):
        problem = epsilon_agreement(3)
        mixed = sx([0, 1, 1])
        assert problem.acceptable(mixed, sx([0, 1, 0]))
        assert problem.acceptable(mixed, sx([1, 2, 2]))
        assert not problem.acceptable(mixed, sx([0, 2, 1]))


class TestTrivialTasks:
    def test_identity_delta_is_input(self):
        problem = identity_task(3)
        s = sx([0, 1, 0])
        assert problem.acceptable(s, s)
        assert not problem.acceptable(s, sx([1, 1, 0]))

    def test_constant_single_output(self):
        problem = constant_task(3)
        assert problem.acceptable(sx([1, 1, 1]), sx([0, 0, 0]))
        assert not problem.acceptable(sx([1, 1, 1]), sx([0, 1, 0]))
