"""Unit tests for k-thick-connectivity."""

import pytest

from repro.tasks.catalog import (
    binary_consensus,
    epsilon_agreement,
    identity_task,
    k_set_agreement,
    leader_election,
)
from repro.tasks.complex import Complex
from repro.tasks.simplex import Simplex
from repro.tasks.thick import (
    input_adjacency_graph,
    is_k_thick_connected,
    problem_is_k_thick_connected,
    similarity_connected_input_sets,
    thick_graph,
    witnessing_subproblem,
)


def sx(values):
    return Simplex.from_values(values)


class TestComplexLevel:
    def test_disjoint_facets_disconnected(self):
        c = Complex([sx([0, 0, 0]), sx([1, 1, 1])])
        assert not is_k_thick_connected(c, 3, 1)
        # even 2-thick fails (they share nothing, need 1-size face)
        assert not is_k_thick_connected(c, 3, 2)
        # 3-thick always holds (empty face suffices)
        assert is_k_thick_connected(c, 3, 3)

    def test_shared_face_connected(self):
        c = Complex([sx([0, 0, 0]), sx([0, 0, 1])])
        assert is_k_thick_connected(c, 3, 1)

    def test_chain_of_facets(self):
        c = Complex([sx([0, 0, 0]), sx([0, 0, 1]), sx([0, 1, 1])])
        g = thick_graph(c, 3, 1)
        assert g.edge_count() == 2
        assert is_k_thick_connected(c, 3, 1)

    def test_single_facet_connected(self):
        assert is_k_thick_connected(Complex([sx([0, 0])]), 2, 1)

    def test_empty_vacuous(self):
        assert is_k_thick_connected(Complex(), 3, 1)


class TestInputEnumeration:
    def test_adjacency_is_one_flip(self):
        g = input_adjacency_graph(binary_consensus(2))
        a, b = sx([0, 0]), sx([0, 1])
        c = sx([1, 1])
        assert g.has_edge(a, b)
        assert not g.has_edge(a, c)

    def test_connected_sets_all_connected(self):
        problem = binary_consensus(2)
        g = input_adjacency_graph(problem)
        from repro.util.graphs import Graph, is_connected

        for input_set in similarity_connected_input_sets(problem):
            sub = Graph(vertices=input_set)
            for x in input_set:
                for y in input_set:
                    if x != y and g.has_edge(x, y):
                        sub.add_edge(x, y)
            assert is_connected(sub)

    def test_enumeration_exhaustive_n2(self):
        problem = binary_consensus(2)
        sets = list(similarity_connected_input_sets(problem))
        assert len(sets) == len(set(sets))  # no duplicates
        # 4 facets in a 4-cycle: connected subsets = 4 singles + 4 edges
        # + 4 paths of 3 + 1 full = 13
        assert len(sets) == 13

    def test_max_size_cap(self):
        problem = binary_consensus(2)
        sets = list(similarity_connected_input_sets(problem, max_size=2))
        assert all(len(s) <= 2 for s in sets)
        assert len(sets) == 8


class TestProblemLevel:
    def test_consensus_not_thick_connected(self):
        assert not problem_is_k_thick_connected(binary_consensus(3), 1)

    def test_consensus_n2(self):
        assert not problem_is_k_thick_connected(binary_consensus(2), 1)

    def test_identity_thick_connected(self):
        assert problem_is_k_thick_connected(identity_task(3), 1)

    def test_election_not_thick_connected(self):
        assert not problem_is_k_thick_connected(leader_election(3), 1)

    def test_epsilon_agreement_connected(self):
        assert problem_is_k_thick_connected(
            epsilon_agreement(3), 1, max_input_set_size=3
        )

    def test_witnessing_subproblem_for_solvable(self):
        witness = witnessing_subproblem(identity_task(2), 1)
        assert witness is not None
        # identity's Δ itself suffices, so the witness is the problem
        assert witness.delta == identity_task(2).delta

    def test_witnessing_subproblem_none_for_consensus(self):
        assert witnessing_subproblem(binary_consensus(2), 1) is None

    def test_subproblem_cap_raises(self):
        with pytest.raises(RuntimeError):
            problem_is_k_thick_connected(
                binary_consensus(3), 1, max_subproblems=5
            )

    def test_2set_connected_k1(self):
        assert problem_is_k_thick_connected(
            k_set_agreement(3, 2, values=(0, 1)), 1
        )
