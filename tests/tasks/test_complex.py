"""Unit tests for simplicial complexes."""

from repro.tasks.complex import (
    Complex,
    full_complex,
    intersection_exact,
)
from repro.tasks.simplex import EMPTY_SIMPLEX, Simplex


def sx(*pairs):
    return Simplex(pairs)


class TestConstruction:
    def test_facets_maximal_only(self):
        big = sx((0, 1), (1, 2))
        small = sx((0, 1))
        c = Complex([big, small])
        assert c.facets == frozenset({big})

    def test_duplicate_facets_collapse(self):
        c = Complex([sx((0, 1)), sx((0, 1))])
        assert len(c.facets) == 1

    def test_empty_complex_falsey(self):
        assert not Complex()
        assert Complex([sx((0, 1))])

    def test_equality_and_hash(self):
        a = Complex([sx((0, 1)), sx((1, 2))])
        b = Complex([sx((1, 2)), sx((0, 1))])
        assert a == b
        assert hash(a) == hash(b)


class TestMembership:
    def test_faces_belong(self):
        c = Complex([sx((0, 1), (1, 2))])
        assert sx((0, 1)) in c
        assert sx((1, 2)) in c
        assert EMPTY_SIMPLEX in c

    def test_non_faces_absent(self):
        c = Complex([sx((0, 1), (1, 2))])
        assert sx((0, 9)) not in c
        assert sx((2, 1)) not in c

    def test_simplexes_enumeration(self):
        c = Complex([sx((0, 1), (1, 2))])
        all_simplexes = set(c.simplexes())
        assert len(all_simplexes) == 4

    def test_size_simplexes(self):
        c = Complex([sx((0, 1), (1, 2)), sx((0, 9), (1, 2))])
        assert len(c.size_simplexes(2)) == 2
        assert len(c.size_simplexes(1)) == 3

    def test_vertices(self):
        c = Complex([sx((0, 1), (1, 2))])
        assert c.vertices() == frozenset({(0, 1), (1, 2)})

    def test_dimension(self):
        assert Complex([sx((0, 1), (1, 2), (2, 3))]).dimension() == 3
        assert Complex().dimension() == 0


class TestAlgebra:
    def test_union(self):
        a = Complex([sx((0, 1))])
        b = Complex([sx((1, 2))])
        u = a.union(b)
        assert sx((0, 1)) in u and sx((1, 2)) in u

    def test_intersection_shared_face(self):
        a = Complex([sx((0, 1), (1, 2))])
        b = Complex([sx((0, 1), (1, 9))])
        inter = a.intersection(b)
        assert sx((0, 1)) in inter
        assert sx((1, 2)) not in inter

    def test_intersection_matches_exact_oracle(self):
        a = Complex([sx((0, 1), (1, 2)), sx((0, 5), (1, 2))])
        b = Complex([sx((0, 1), (1, 2), (2, 7)), sx((0, 5))])
        fast = a.intersection(b)
        slow = intersection_exact(a, b)
        assert set(fast.simplexes()) == set(slow.simplexes())

    def test_restrict_ids(self):
        c = Complex([sx((0, 1), (1, 2), (2, 3))])
        r = c.restrict_ids([0, 2])
        assert sx((0, 1), (2, 3)) in r
        assert sx((1, 2)) not in r


class TestFullComplex:
    def test_binary_facet_count(self):
        c = full_complex(3, (0, 1))
        assert len(c.size_simplexes(3)) == 8

    def test_contains_every_assignment(self):
        c = full_complex(2, (0, 1))
        assert Simplex.from_values([1, 0]) in c
