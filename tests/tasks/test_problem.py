"""Unit tests for decision problems and subproblem enumeration."""

import pytest

from repro.tasks.catalog import binary_consensus, identity_task
from repro.tasks.complex import Complex, full_complex
from repro.tasks.problem import DecisionProblem, delta_from_rule
from repro.tasks.simplex import Simplex


class TestConstruction:
    def test_delta_must_cover_facets(self):
        inputs = full_complex(2, (0, 1))
        outputs = full_complex(2, (0, 1))
        with pytest.raises(ValueError):
            DecisionProblem("bad", 2, inputs, outputs, delta={})

    def test_delta_must_stay_in_outputs(self):
        inputs = full_complex(2, (0, 1))
        outputs = Complex([Simplex.from_values([0, 0])])
        delta = delta_from_rule(
            inputs, 2, lambda s: [Simplex.from_values([1, 1])]
        )
        with pytest.raises(ValueError):
            DecisionProblem("bad", 2, inputs, outputs, delta=delta)

    def test_delta_from_rule_shape(self):
        problem = binary_consensus(3)
        assert len(problem.delta) == 8


class TestAcceptability:
    def test_unanimous_forces_matching_output(self):
        problem = binary_consensus(3)
        zeros = Simplex.from_values([0, 0, 0])
        ones = Simplex.from_values([1, 1, 1])
        assert problem.acceptable(zeros, zeros)
        assert not problem.acceptable(zeros, ones)

    def test_partial_decision_acceptable_as_face(self):
        problem = binary_consensus(3)
        mixed = Simplex.from_values([0, 1, 1])
        partial = Simplex([(0, 1), (2, 1)])
        assert problem.acceptable(mixed, partial)

    def test_disagreeing_partial_rejected(self):
        problem = binary_consensus(3)
        mixed = Simplex.from_values([0, 1, 1])
        split = Simplex([(0, 0), (1, 1)])
        assert not problem.acceptable(mixed, split)

    def test_empty_decision_always_acceptable(self):
        problem = binary_consensus(3)
        mixed = Simplex.from_values([0, 1, 1])
        assert problem.acceptable(mixed, Simplex())


class TestDeltaComplex:
    def test_full_input_set(self):
        problem = binary_consensus(3)
        c = problem.delta_complex(problem.input_facets())
        assert len(c.size_simplexes(3)) == 2

    def test_unanimous_only(self):
        problem = binary_consensus(3)
        zeros = Simplex.from_values([0, 0, 0])
        c = problem.delta_complex([zeros])
        assert len(c.size_simplexes(3)) == 1


class TestSubproblems:
    def test_count_for_consensus(self):
        problem = binary_consensus(3)
        # 2 unanimous facets with 1 choice, 6 mixed with 3 nonempty
        # subsets of {all0, all1}: 3^6 = 729
        subs = list(problem.subproblems())
        assert len(subs) == 729

    def test_subproblems_shrink_delta(self):
        problem = binary_consensus(3)
        for sub in problem.subproblems(max_count=10):
            for facet, out in sub.delta.items():
                for f in out.facets:
                    assert f in problem.delta[facet]

    def test_max_count_respected(self):
        problem = binary_consensus(3)
        assert len(list(problem.subproblems(max_count=5))) == 5

    def test_restrict_delta(self):
        problem = binary_consensus(3)
        zeros = Simplex.from_values([0, 0, 0])

        def chooser(s, out):
            if zeros in out:
                return Complex([zeros])
            return out

        sub = problem.restrict_delta(chooser)
        mixed = Simplex.from_values([0, 1, 1])
        assert sub.delta[mixed] == Complex([zeros])

    def test_restrict_delta_cannot_enlarge(self):
        problem = identity_task(2)
        bigger = Simplex.from_values([9, 9])

        with pytest.raises(ValueError):
            problem.restrict_delta(lambda s, out: Complex([bigger]))
