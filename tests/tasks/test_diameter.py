"""Unit tests for s-diameters and the composition bounds (Lemma 7.6)."""

import pytest

from repro.layerings.s1_mobile import S1MobileLayering
from repro.models.mobile import MobileModel
from repro.protocols.full_information import FullInformationProtocol
from repro.tasks.diameter import (
    check_lemma_7_6,
    layer_image,
    lemma_7_6_bound,
    measured_layer_diameters,
    theorem_7_7_series,
)


@pytest.fixture
def layering():
    return S1MobileLayering(MobileModel(FullInformationProtocol(3), 3))


class TestBound:
    def test_formula(self):
        assert lemma_7_6_bound(2, 3) == 2 * 3 + 2 + 3
        assert lemma_7_6_bound(0, 5) == 5
        assert lemma_7_6_bound(4, 0) == 4

    def test_series_shape(self):
        series = theorem_7_7_series(n=3, t=2, d_initial=3)
        assert len(series) == 3
        assert series[0] == 3
        # d_Y^0 = 2*3 = 6: next = 3*6+3+6 = 27
        assert series[1] == 27
        # d_Y^1 = 2*2 = 4: next = 27*4+27+4 = 139
        assert series[2] == 139

    def test_series_monotone(self):
        series = theorem_7_7_series(4, 3, 4)
        assert all(a < b for a, b in zip(series, series[1:]))


class TestMeasured:
    def test_layer_image_dedupes(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        image = layer_image(layering, [state, state])
        assert len(image) == len(set(image))

    def test_initial_set_measurement(self, layering):
        initials = layering.model.initial_states((0, 1))
        d_x, d_y, d_image = measured_layer_diameters(layering, initials)
        # Con_0 for n=3 is a 3-cube: diameter 3
        assert d_x == 3
        assert d_y >= 1
        assert d_image >= 1

    def test_lemma_7_6_holds_on_initials(self, layering):
        initials = layering.model.initial_states((0, 1))
        report = check_lemma_7_6(layering, initials)
        assert report["holds"]
        assert report["d_S(X)"] <= report["bound"]

    def test_precondition_enforced(self, layering):
        model = layering.model
        corners = [
            model.initial_state((0, 0, 0)),
            model.initial_state((1, 1, 1)),
        ]
        with pytest.raises(ValueError):
            check_lemma_7_6(layering, corners)

    def test_singleton_set(self, layering):
        state = layering.model.initial_state((0, 1, 1))
        report = check_lemma_7_6(layering, [state])
        assert report["d_X"] == 0
        assert report["holds"]
