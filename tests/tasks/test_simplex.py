"""Unit tests for vertices and simplexes."""

import pytest

from repro.tasks.simplex import EMPTY_SIMPLEX, Simplex


class TestConstruction:
    def test_from_values(self):
        s = Simplex.from_values([4, 5, 6])
        assert s.value_of(0) == 4
        assert s.value_of(2) == 6
        assert len(s) == 3

    def test_from_mapping(self):
        s = Simplex.from_mapping({2: "a", 0: "b"})
        assert s.ids() == frozenset({0, 2})

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Simplex([(0, "a"), (0, "b")])

    def test_duplicate_vertices_collapse(self):
        s = Simplex([(0, "a"), (0, "a")])
        assert len(s) == 1

    def test_empty(self):
        assert len(EMPTY_SIMPLEX) == 0
        assert EMPTY_SIMPLEX == Simplex()


class TestIdentity:
    def test_equality_order_independent(self):
        assert Simplex([(0, 1), (1, 2)]) == Simplex([(1, 2), (0, 1)])

    def test_hash_consistent(self):
        assert hash(Simplex([(0, 1)])) == hash(Simplex([(0, 1)]))

    def test_face_relation(self):
        small = Simplex([(0, 1)])
        big = Simplex([(0, 1), (1, 2)])
        assert small <= big
        assert small < big
        assert not big <= small
        assert EMPTY_SIMPLEX <= small


class TestOperations:
    def test_values(self):
        s = Simplex.from_values([1, 1, 2])
        assert s.values() == frozenset({1, 2})

    def test_value_of_missing_raises(self):
        with pytest.raises(KeyError):
            Simplex([(0, 1)]).value_of(5)

    def test_restrict(self):
        s = Simplex.from_values([1, 2, 3])
        assert s.restrict([0, 2]) == Simplex([(0, 1), (2, 3)])
        assert s.restrict([9]) == EMPTY_SIMPLEX

    def test_without(self):
        s = Simplex.from_values([1, 2])
        assert s.without(0) == Simplex([(1, 2)])
        assert s.without(7) == s

    def test_union(self):
        a = Simplex([(0, 1)])
        b = Simplex([(1, 2)])
        assert a.union(b) == Simplex([(0, 1), (1, 2)])

    def test_union_conflict_rejected(self):
        with pytest.raises(ValueError):
            Simplex([(0, 1)]).union(Simplex([(0, 2)]))

    def test_intersection(self):
        a = Simplex([(0, 1), (1, 2)])
        b = Simplex([(0, 1), (1, 9)])
        assert a.intersection(b) == Simplex([(0, 1)])

    def test_as_mapping(self):
        s = Simplex.from_values(["x", "y"])
        assert s.as_mapping() == {0: "x", 1: "y"}

    def test_iteration_sorted(self):
        s = Simplex([(2, "c"), (0, "a")])
        assert list(s) == [(0, "a"), (2, "c")]


class TestFaces:
    def test_all_faces_count(self):
        s = Simplex.from_values([1, 2])
        faces = list(s.faces())
        assert len(faces) == 4  # {}, {0}, {1}, {0,1}

    def test_faces_of_size(self):
        s = Simplex.from_values([1, 2, 3])
        assert len(list(s.faces(size=2))) == 3

    def test_contains_vertex(self):
        s = Simplex.from_values([1, 2])
        assert (0, 1) in s
        assert (0, 2) not in s
