"""Unit tests for the task checker."""

import pytest

from repro.core.checker import Verdict
from repro.layerings.permutation import PermutationLayering
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.shared_memory import SharedMemoryModel
from repro.protocols.candidates import QuorumDecide, WaitForAll
from repro.protocols.tasks import (
    DecideConstantProtocol,
    DecideOwnInput,
    EpsilonAgreementProtocol,
)
from repro.tasks.catalog import (
    binary_consensus,
    constant_task,
    epsilon_agreement,
    identity_task,
)
from repro.tasks.checker import TaskChecker
from repro.tasks.simplex import Simplex


def perm_layering(protocol):
    return PermutationLayering(AsyncMessagePassingModel(protocol, 3))


class TestPositiveControls:
    def test_identity_satisfied(self):
        layering = perm_layering(DecideOwnInput())
        checker = TaskChecker(layering, identity_task(3))
        report = checker.check_all(layering.model)
        assert report.satisfied

    def test_constant_satisfied(self):
        layering = perm_layering(DecideConstantProtocol())
        checker = TaskChecker(layering, constant_task(3))
        report = checker.check_all(layering.model)
        assert report.satisfied

    def test_epsilon_satisfied_rw(self):
        layering = SynchronicRWLayering(
            SharedMemoryModel(EpsilonAgreementProtocol(), 3)
        )
        checker = TaskChecker(layering, epsilon_agreement(3))
        report = checker.check_all(layering.model)
        assert report.satisfied


class TestNegativeControls:
    def test_quorum_decide_fails_consensus_task(self):
        layering = perm_layering(QuorumDecide(2))
        checker = TaskChecker(layering, binary_consensus(3))
        report = checker.check_all(layering.model)
        assert report.verdict is Verdict.VALIDITY
        # the Δ-violation here IS the disagreement: a split decided
        # simplex is not in the consensus output complex
        assert "not acceptable" in report.detail

    def test_waitforall_fails_decision(self):
        layering = perm_layering(WaitForAll())
        checker = TaskChecker(
            layering, binary_consensus(3), max_states=300_000
        )
        report = checker.check_all(layering.model)
        assert report.verdict is Verdict.DECISION

    def test_constant_protocol_fails_identity_task(self):
        layering = perm_layering(DecideConstantProtocol(0))
        checker = TaskChecker(layering, identity_task(3))
        report = checker.check_all(layering.model)
        assert report.verdict is Verdict.VALIDITY

    def test_witness_replays(self):
        layering = perm_layering(QuorumDecide(2))
        checker = TaskChecker(layering, binary_consensus(3))
        report = checker.check_all(layering.model)
        state = report.execution.initial
        for action in report.execution.actions:
            state = layering.apply(state, action)
        assert state == report.execution.final
        decided = TaskChecker(
            layering, binary_consensus(3)
        ).decided_simplex(state)
        assert not binary_consensus(3).acceptable(
            report.input_facet, decided
        )


class TestWrongInitialState:
    def test_input_facet_drives_initial(self):
        layering = perm_layering(DecideOwnInput())
        problem = identity_task(3)
        checker = TaskChecker(layering, problem)
        facet = Simplex.from_values([1, 0, 1])
        state = layering.model.initial_state((1, 0, 1))
        report = checker.check(state, facet)
        assert report.satisfied
