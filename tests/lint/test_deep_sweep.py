"""The deep self-sweep: parity with the checked-in baseline + latency.

Two acceptance criteria from ISSUE 10 live here:

* **sweep parity** — ``repro lint --deep src/repro`` must produce zero
  findings beyond ``.replint-baseline.json``.  This is the
  zero-new-false-positives pin: any rule change that starts flagging
  shipped code fails this test instead of silently dirtying CI, and any
  fixed finding shows up as an unused baseline entry to prune.
* **latency** — deep analysis of the full package completes in under
  10 seconds (it runs as a default-off CLI pass and a CI gate, so its
  cost budget is explicit).

The smoke test at the bottom is the tier-1 guard that the engine itself
works end to end on a toy tree — CI runs this file on every PR, so a
deep-engine regression cannot hide behind an accidentally-clean sweep.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.lint.flow import (
    apply_baseline,
    build_call_graph,
    compute_summaries,
    deep_lint_paths,
    load_baseline,
    transition_entry_points,
)
from repro.lint import lint_paths

from tests.lint.test_callgraph import write_tree

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
BASELINE = REPO / ".replint-baseline.json"


@pytest.fixture(scope="module")
def sweep():
    start = time.monotonic()
    findings = lint_paths([str(SRC)]) + deep_lint_paths([str(SRC)])
    elapsed = time.monotonic() - start
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, elapsed


class TestSelfSweep:
    def test_deep_findings_are_clean(self):
        # the interprocedural pass on its own: the shipped transition
        # code has no reachable nondeterminism/impurity and no payload
        # captures — deep findings need no baseline at all
        assert deep_lint_paths([str(SRC)]) == []

    def test_sweep_parity_with_checked_in_baseline(self, sweep):
        findings, _ = sweep
        baseline = load_baseline(str(BASELINE))
        # baseline paths are repo-relative; the sweep above ran from an
        # absolute path — normalize for comparison
        for finding in findings:
            assert str(REPO) in finding.path
        rel = [
            type(f)(
                code=f.code,
                message=f.message,
                path=str(Path(f.path).relative_to(REPO)).replace(
                    "\\", "/"
                ),
                line=f.line,
                col=f.col,
                witness=f.witness,
            )
            for f in findings
        ]
        kept, suppressed, unused = apply_baseline(rel, baseline)
        assert kept == [], (
            "new lint findings beyond .replint-baseline.json:\n"
            + "\n".join(f.format() for f in kept)
        )
        assert not unused, (
            "stale baseline entries (the debt was paid — prune them):\n"
            + "\n".join(str(e.to_dict()) for e in unused)
        )
        # entries are keyed (code, path, symbol): several findings with
        # the same message in one file share a single entry
        assert suppressed >= len(baseline.entries) > 0

    def test_full_package_deep_analysis_under_ten_seconds(self, sweep):
        _, elapsed = sweep
        assert elapsed < 10.0, (
            f"deep sweep took {elapsed:.1f}s — the <10s acceptance "
            "budget is blown"
        )

    def test_sweep_is_not_vacuous(self):
        # the clean verdict must come from analysis, not from an empty
        # graph: the shipped tree has a substantial transition surface
        graph = build_call_graph([str(SRC)])
        assert len(graph.modules) > 50
        assert len(graph.functions) > 500
        entries = transition_entry_points(graph)
        assert len(entries) > 50
        names = {e.qualname for e in entries}
        assert "repro.layerings.base.Layering.successors" in names
        assert "repro.models.base.Model.apply" in names
        summaries = compute_summaries(graph)
        # harness code legitimately uses clocks/randomness — the pass
        # must have seen those effects and *scoped* them out, not
        # missed them
        assert any(s.nondet for s in summaries.values())
        assert any(s.receiver_writes for s in summaries.values())


class TestDeepSmoke:
    """Tier-1 end-to-end exercise of the engine on a seeded toy tree."""

    def test_toy_tree_end_to_end(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "helpers.py": """
                import random as r

                STATS = {}

                def pick(xs):
                    return _inner(xs)

                def _inner(xs):
                    return r.choice(xs)

                def count(k):
                    STATS[k] = STATS.get(k, 0) + 1
                """,
                "proto.py": """
                from helpers import pick, count

                class Coin(Protocol):
                    def step(self, state):
                        count("step")
                        return pick([0, 1])
                """,
                "driver.py": """
                from repro.resilience.pool import run_units

                def work(p):
                    return p

                def drive():
                    fh = open("/tmp/x")
                    return run_units(work, [(1, fh)])
                """,
            },
        )
        findings = deep_lint_paths([str(tmp_path)])
        codes = sorted({f.code for f in findings})
        assert codes == ["RP401", "RP402", "RP501"]
        # every deep finding carries a non-trivial chain witness
        for finding in findings:
            assert finding.witness is not None
            assert len(finding.witness.chain) >= 2
