"""The preflight's default-on integration with checkers and explorers.

Three behaviours are pinned here:

* an ill-formed system yields ``ILL_FORMED`` reports (checkers) or an
  :class:`IllFormedSystemError` (explorers) instead of garbage verdicts;
* ``preflight=False`` reproduces the pre-preflight engines exactly — a
  clean system's report is identical with the stage on or off, and an
  ill-formed system is explored rather than refused;
* in the parallel explorer the refusal crosses the process boundary
  with its exception type intact.
"""

from __future__ import annotations

import pytest

from repro.core.checker import ConsensusChecker, Verdict
from repro.core.exploration import (
    explore,
    reachable_states,
    reachable_states_parallel,
)
from repro.lint import IllFormedSystemError
from repro.resilience.pool import PoolConfig
from repro.tasks.catalog import binary_consensus
from repro.tasks.checker import TaskChecker
from repro.tasks.simplex import Simplex
from tests.conftest import ToySystem


def reviving_system():
    """Ill-formed: process 1 is failed at the root and revives (RP203)."""
    return ToySystem(
        edges={
            "x": [("revive", "a"), ("other", "b")],
            "a": [("s", "a")],
            "b": [("s", "b")],
        },
        decisions={"a": {0: 0, 1: 0}, "b": {0: 0, 1: 0}},
        failed={"x": frozenset({1})},
    )


def valid_diamond():
    """Well-formed: x -> {a, b}, both all-decided on 0."""
    return ToySystem(
        edges={
            "x": [("l", "a"), ("r", "b")],
            "a": [("s", "a")],
            "b": [("s", "b")],
        },
        decisions={"a": {0: 0, 1: 0}, "b": {0: 0, 1: 0}},
    )


class TestConsensusChecker:
    def test_ill_formed_verdict_with_report(self):
        system = reviving_system()
        report = ConsensusChecker(system).check(system.state("x"), (0, 0))
        assert report.verdict is Verdict.ILL_FORMED
        assert report.ill_formed
        assert not report.satisfied
        assert [f.code for f in report.preflight.findings] == ["RP203"]
        assert report.preflight.findings[0].witness is not None
        assert "RP203" in report.detail

    def test_no_preflight_explores_the_ill_formed_system(self):
        system = reviving_system()
        report = ConsensusChecker(system, preflight=False).check(
            system.state("x"), (0, 0)
        )
        assert report.verdict is not Verdict.ILL_FORMED
        assert report.preflight is None

    def test_no_preflight_parity_on_a_clean_system(self):
        # The stage must be invisible on well-formed systems: identical
        # reports (verdict, witnesses, counters) with it on or off.
        # budget_stats carries wall-clock seconds, the one legitimately
        # nondeterministic field, so it is normalized out.
        import dataclasses

        system = valid_diamond()
        with_stage = ConsensusChecker(system).check(
            system.state("x"), (0, 0)
        )
        without = ConsensusChecker(system, preflight=False).check(
            system.state("x"), (0, 0)
        )
        assert dataclasses.replace(
            with_stage, budget_stats=None
        ) == dataclasses.replace(without, budget_stats=None)

    def test_ill_formed_charges_no_exploration(self):
        system = reviving_system()
        report = ConsensusChecker(system).check(system.state("x"), (0, 0))
        assert report.states_explored == 0
        assert report.execution is None and report.cycle is None


class TestTaskChecker:
    def test_ill_formed_verdict(self):
        system = reviving_system()
        checker = TaskChecker(system, binary_consensus(2))
        report = checker.check(
            system.state("x"), Simplex.from_values((0, 0))
        )
        assert report.verdict is Verdict.ILL_FORMED
        assert report.ill_formed
        assert [f.code for f in report.preflight.findings] == ["RP203"]

    def test_no_preflight_explores(self):
        system = reviving_system()
        checker = TaskChecker(
            system, binary_consensus(2), preflight=False
        )
        report = checker.check(
            system.state("x"), Simplex.from_values((0, 0))
        )
        assert report.verdict is not Verdict.ILL_FORMED


class TestExplorers:
    def test_reachable_states_refuses(self):
        system = reviving_system()
        with pytest.raises(IllFormedSystemError) as excinfo:
            reachable_states(system, [system.state("x")])
        assert excinfo.value.report is not None
        assert [f.code for f in excinfo.value.report.findings] == [
            "RP203"
        ]

    def test_reachable_states_no_preflight_parity(self):
        broken = reviving_system()
        depths = reachable_states(
            broken, [broken.state("x")], preflight=False
        )
        assert depths == {
            broken.state("x"): 0,
            broken.state("a"): 1,
            broken.state("b"): 1,
        }
        clean = valid_diamond()
        assert reachable_states(
            clean, [clean.state("x")]
        ) == reachable_states(clean, [clean.state("x")], preflight=False)

    def test_explore_refuses(self):
        system = reviving_system()
        with pytest.raises(IllFormedSystemError):
            explore(system, [system.state("x")])
        stats = explore(system, [system.state("x")], preflight=False)
        assert stats.states == 3


class TestRealSystemParity:
    def test_no_preflight_parity_on_an_e12_cell(self, st_floodset_fast):
        # One real grid cell (FloodSet(1) under S^t, n=3, t=1): the full
        # check_all sweep must be byte-identical with the stage on or
        # off, wall-clock seconds aside.
        import dataclasses

        layering = st_floodset_fast
        with_stage = ConsensusChecker(layering).check_all(layering.model)
        without = ConsensusChecker(layering, preflight=False).check_all(
            layering.model
        )
        assert dataclasses.replace(
            with_stage, budget_stats=None
        ) == dataclasses.replace(without, budget_stats=None)


class TestParallelExplorer:
    # Fast-fail pool: no retries, minimal backoff — the refusal is
    # deterministic, so retrying it only slows the test down.
    POOL = PoolConfig(workers=2, max_retries=0, retry_backoff=0.01)

    def test_refusal_crosses_the_process_boundary(self):
        system = reviving_system()
        roots = [system.state("x"), system.state("a")]
        with pytest.raises(IllFormedSystemError) as excinfo:
            reachable_states_parallel(
                system, roots, workers=2, pool=self.POOL
            )
        # Only the describing text survives pickling; the structured
        # report does not.
        assert excinfo.value.report is None
        assert "RP203" in str(excinfo.value)

    def test_no_preflight_matches_sequential(self):
        system = reviving_system()
        roots = [system.state("x"), system.state("a")]
        parallel = reachable_states_parallel(
            system, roots, workers=2, pool=self.POOL, preflight=False
        )
        sequential = reachable_states(system, roots, preflight=False)
        assert parallel == sequential
