"""`repro lint` CLI tests: exit codes, selection flags, targets.

The lint subcommand follows lint convention, not the experiment
convention: 0 = every target clean, 1 = findings reported, 2 = the
analysis itself failed.  Findings go to stdout (machine-consumable,
``path:line:col: CODE message``); status chatter goes through the
``repro`` logger to stderr.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

BAD_PROTOCOL = (
    "import random\n"
    "\n"
    "class Coin(Protocol):\n"
    "    def step(self, state, inbox):\n"
    "        inbox.append('seen')\n"
    "        return random.choice([0, 1])\n"
)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "coin.py"
    path.write_text(BAD_PROTOCOL)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "tidy.py"
    path.write_text("class Tidy(Protocol):\n    def step(self, s):\n        return s\n")
    return path


class TestExitCodes:
    def test_clean_target_exits_zero(self, clean_file, capsys):
        assert main(["lint", str(clean_file)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, bad_file, capsys):
        assert main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RP101" in out and "RP103" in out
        assert f"{bad_file}:5:" in out  # path:line:col lines on stdout

    def test_unknown_rule_code_exits_two(self, bad_file, capsys):
        assert main(["lint", "--select", "RP777", str(bad_file)]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "gone.py")]) == 2

    def test_no_target_exits_two(self):
        assert main(["lint"]) == 2


class TestSelection:
    def test_select_narrows_findings(self, bad_file, capsys):
        assert main(["lint", "--select", "RP103", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RP103" in out and "RP101" not in out

    def test_ignore_can_silence_everything(self, bad_file):
        assert (
            main(["lint", "--ignore", "RP101,RP103", str(bad_file)]) == 0
        )


class TestListRules:
    def test_lists_static_and_contract_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RP101", "RP105", "RP201", "RP205", "RP301"):
            assert code in out
        assert "ast" in out and "contract" in out


class TestSystemTarget:
    def test_shipped_protocol_preflights_clean(self, capsys):
        # The contract probe over a real (protocol, layering) pair: the
        # shipped systems must pass their own preflight.
        code = main(
            [
                "lint", "--protocol", "quorum",
                "--model", "permutation-mp", "--n", "3",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""


class TestParser:
    def test_lint_accepts_paths_and_flags(self):
        args = build_parser().parse_args(
            ["lint", "--select", "RP101", "src", "examples"]
        )
        assert args.paths == ["src", "examples"]
        assert args.select == "RP101"

    def test_no_preflight_flag_reaches_namespace(self):
        args = build_parser().parse_args(["--no-preflight", "lower-bound"])
        assert args.preflight is False
        args = build_parser().parse_args(["lower-bound"])
        assert args.preflight is True

    def test_exact_long_options_still_parse(self):
        # allow_abbrev is off (two --no-* flags made --n ambiguous);
        # the exact spellings used throughout the docs must keep working.
        args = build_parser().parse_args(
            ["--no-cache", "lint", "--protocol", "quorum", "--n", "4"]
        )
        assert args.n == 4 and args.cache is False
