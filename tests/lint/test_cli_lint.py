"""`repro lint` CLI tests: exit codes, selection flags, targets.

The lint subcommand follows lint convention, not the experiment
convention: 0 = every target clean, 1 = findings reported, 2 = the
analysis itself failed.  Findings go to stdout (machine-consumable,
``path:line:col: CODE message``); status chatter goes through the
``repro`` logger to stderr.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

BAD_PROTOCOL = (
    "import random\n"
    "\n"
    "class Coin(Protocol):\n"
    "    def step(self, state, inbox):\n"
    "        inbox.append('seen')\n"
    "        return random.choice([0, 1])\n"
)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "coin.py"
    path.write_text(BAD_PROTOCOL)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "tidy.py"
    path.write_text("class Tidy(Protocol):\n    def step(self, s):\n        return s\n")
    return path


class TestExitCodes:
    def test_clean_target_exits_zero(self, clean_file, capsys):
        assert main(["lint", str(clean_file)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, bad_file, capsys):
        assert main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RP101" in out and "RP103" in out
        assert f"{bad_file}:5:" in out  # path:line:col lines on stdout

    def test_unknown_rule_code_exits_two(self, bad_file, capsys):
        assert main(["lint", "--select", "RP777", str(bad_file)]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "gone.py")]) == 2

    def test_no_target_exits_two(self):
        assert main(["lint"]) == 2


class TestSelection:
    def test_select_narrows_findings(self, bad_file, capsys):
        assert main(["lint", "--select", "RP103", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RP103" in out and "RP101" not in out

    def test_ignore_can_silence_everything(self, bad_file):
        assert (
            main(["lint", "--ignore", "RP101,RP103", str(bad_file)]) == 0
        )


class TestSelectIgnorePrecedence:
    def test_ignore_wins_over_select(self, bad_file):
        # both name RP101: ignore is subtracted after select, so the
        # rule stays off — "silence this" always beats "run this"
        assert (
            main(
                [
                    "lint", "--select", "RP101,RP103",
                    "--ignore", "RP101", str(bad_file),
                ]
            )
            == 1
        )

    def test_ignore_all_selected_is_clean(self, bad_file, capsys):
        assert (
            main(
                [
                    "lint", "--select", "RP101",
                    "--ignore", "RP101", str(bad_file),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == ""

    def test_unknown_code_in_ignore_exits_two(self, bad_file):
        # a typo in --ignore must not silently keep the rule enabled
        assert main(["lint", "--ignore", "RP999X", str(bad_file)]) == 2


@pytest.fixture
def deep_tree(tmp_path):
    """A tree whose only defect needs the interprocedural pass."""
    tree = tmp_path / "deeptree"
    tree.mkdir()
    (tree / "helpers.py").write_text(
        "import random\n\ndef pick(xs):\n    return random.choice(xs)\n"
    )
    (tree / "proto.py").write_text(
        "from helpers import pick\n\n"
        "class Coin(Protocol):\n"
        "    def step(self, state):\n"
        "        return pick([0, 1])\n"
    )
    return tree


class TestDeepInteraction:
    def test_selecting_deep_code_without_deep_exits_two(
        self, deep_tree, capsys
    ):
        # the dangerous shape: --select RP401 without --deep finds
        # nothing by construction; it must error, not report clean
        assert main(["lint", "--select", "RP401", str(deep_tree)]) == 2
        err = capsys.readouterr().err
        assert "--deep" in err and "RP401" in err

    def test_deep_flag_enables_selected_deep_code(
        self, deep_tree, capsys
    ):
        assert (
            main(
                ["lint", "--deep", "--select", "RP401", str(deep_tree)]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "RP401" in out
        assert "call chain" in out  # witness chain rides in the message

    def test_shallow_pass_misses_the_indirect_defect(self, deep_tree):
        # the same tree is clean to the single-module engine — this is
        # exactly why selecting RP4xx without --deep must be an error
        assert main(["lint", str(deep_tree)]) == 0

    def test_deep_without_paths_exits_two(self, capsys):
        assert (
            main(
                [
                    "lint", "--deep", "--protocol", "quorum",
                    "--model", "permutation-mp", "--n", "3",
                ]
            )
            == 2
        )
        assert "path" in capsys.readouterr().err

    def test_ignore_silences_deep_rule(self, deep_tree):
        assert (
            main(
                ["lint", "--deep", "--ignore", "RP401", str(deep_tree)]
            )
            == 0
        )


class TestJsonAndBaseline:
    def test_json_report_on_stdout(self, deep_tree, capsys):
        assert (
            main(
                ["lint", "--deep", "--format", "json", str(deep_tree)]
            )
            == 1
        )
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["summary"]["by_code"] == {"RP401": 1}
        (item,) = report["findings"]
        assert item["chain"][0]["qualname"] == "proto.Coin.step"

    def test_write_then_gate_with_baseline(
        self, deep_tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint", "--deep", "--baseline", str(baseline),
                    "--write-baseline", str(deep_tree),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # gated rerun: same findings, now suppressed
        assert (
            main(
                [
                    "lint", "--deep", "--baseline", str(baseline),
                    str(deep_tree),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == ""

    def test_write_baseline_requires_baseline_path(self, deep_tree):
        assert (
            main(["lint", "--deep", "--write-baseline", str(deep_tree)])
            == 2
        )

    def test_malformed_baseline_exits_two(self, deep_tree, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert (
            main(
                [
                    "lint", "--deep", "--baseline", str(bad),
                    str(deep_tree),
                ]
            )
            == 2
        )


class TestListRules:
    def test_lists_static_contract_and_flow_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RP101", "RP105", "RP201", "RP205", "RP301", "RP401", "RP501"
        ):
            assert code in out
        assert "ast" in out and "contract" in out and "flow" in out


class TestSystemTarget:
    def test_shipped_protocol_preflights_clean(self, capsys):
        # The contract probe over a real (protocol, layering) pair: the
        # shipped systems must pass their own preflight.
        code = main(
            [
                "lint", "--protocol", "quorum",
                "--model", "permutation-mp", "--n", "3",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""


class TestParser:
    def test_lint_accepts_paths_and_flags(self):
        args = build_parser().parse_args(
            ["lint", "--select", "RP101", "src", "examples"]
        )
        assert args.paths == ["src", "examples"]
        assert args.select == "RP101"

    def test_no_preflight_flag_reaches_namespace(self):
        args = build_parser().parse_args(["--no-preflight", "lower-bound"])
        assert args.preflight is False
        args = build_parser().parse_args(["lower-bound"])
        assert args.preflight is True

    def test_exact_long_options_still_parse(self):
        # allow_abbrev is off (two --no-* flags made --n ambiguous);
        # the exact spellings used throughout the docs must keep working.
        args = build_parser().parse_args(
            ["--no-cache", "lint", "--protocol", "quorum", "--n", "4"]
        )
        assert args.n == 4 and args.cache is False
