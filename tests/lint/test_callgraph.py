"""Call-graph construction: indexing, alias and method resolution.

The deep pass is only as good as its resolver — a call edge it cannot
see is a taint it cannot propagate — so these tests pin the resolution
cases the RP4xx/RP5xx rules depend on: same-module helpers, import
aliases (plain, ``from``-renamed, relative), ``self.``/``cls.`` method
dispatch through base classes across modules, and constructor calls.
"""

from __future__ import annotations

import textwrap

from repro.lint.flow import build_call_graph


def write_tree(tmp_path, files: dict[str, str]):
    for name, body in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body))
    return tmp_path


def edges_of(graph, qualname):
    return [
        (site.callee, site.external)
        for site in graph.functions[qualname].calls
    ]


class TestIndexing:
    def test_functions_classes_and_methods_collected(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                def helper():
                    pass

                class Thing:
                    def method(self):
                        pass
                """
            },
        )
        graph = build_call_graph([str(tmp_path)])
        assert "mod.helper" in graph.functions
        assert "mod.Thing.method" in graph.functions
        assert graph.functions["mod.Thing.method"].class_name == "Thing"

    def test_package_modules_get_dotted_names(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/inner.py": "def f():\n    pass\n",
            },
        )
        graph = build_call_graph([str(tmp_path)])
        assert "pkg.inner.f" in graph.functions

    def test_mutable_globals_detected(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                CACHE = {}
                ITEMS = []
                SEEN = set()
                FROZEN = (1, 2)
                NAME = "x"
                """
            },
        )
        graph = build_call_graph([str(tmp_path)])
        index = graph.modules["mod"]
        assert index.mutable_globals == {"CACHE", "ITEMS", "SEEN"}

    def test_syntax_error_files_are_skipped(self, tmp_path):
        write_tree(
            tmp_path,
            {"bad.py": "def f(:\n", "good.py": "def g():\n    pass\n"},
        )
        graph = build_call_graph([str(tmp_path)])
        assert "good.g" in graph.functions
        assert not any(q.startswith("bad.") for q in graph.functions)


class TestResolution:
    def test_same_module_helper(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                def helper():
                    pass

                def caller():
                    helper()
                """
            },
        )
        graph = build_call_graph([str(tmp_path)])
        assert ("mod.helper", False) in edges_of(graph, "mod.caller")

    def test_import_alias_resolves_to_external_dotted(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                import random as r
                from time import time as now

                def f():
                    r.choice([1])
                    now()
                """
            },
        )
        graph = build_call_graph([str(tmp_path)])
        edges = edges_of(graph, "mod.f")
        assert ("random.choice", True) in edges
        assert ("time.time", True) in edges

    def test_cross_module_from_import(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "def util():\n    pass\n",
                "pkg/b.py": """
                from pkg.a import util

                def f():
                    util()
                """,
            },
        )
        graph = build_call_graph([str(tmp_path)])
        assert ("pkg.a.util", False) in edges_of(graph, "pkg.b.f")

    def test_self_dispatch_within_class(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                class C:
                    def a(self):
                        self.b()

                    def b(self):
                        pass
                """
            },
        )
        graph = build_call_graph([str(tmp_path)])
        assert ("mod.C.b", False) in edges_of(graph, "mod.C.a")

    def test_self_dispatch_through_base_class_across_modules(
        self, tmp_path
    ):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/base.py": """
                class Base:
                    def inherited(self):
                        pass
                """,
                "pkg/sub.py": """
                from pkg.base import Base

                class Sub(Base):
                    def caller(self):
                        self.inherited()
                """,
            },
        )
        graph = build_call_graph([str(tmp_path)])
        assert ("pkg.base.Base.inherited", False) in edges_of(
            graph, "pkg.sub.Sub.caller"
        )

    def test_constructor_resolves_to_init(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                class C:
                    def __init__(self):
                        pass

                def f():
                    C()
                """
            },
        )
        graph = build_call_graph([str(tmp_path)])
        assert ("mod.C.__init__", False) in edges_of(graph, "mod.f")

    def test_unknown_names_stay_external(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                def f(x):
                    mystery(x)
                    x.frobnicate()
                """
            },
        )
        graph = build_call_graph([str(tmp_path)])
        edges = edges_of(graph, "mod.f")
        assert ("mystery", True) in edges
        assert ("x.frobnicate", True) in edges

    def test_generator_functions_marked(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                def gen():
                    yield 1

                def plain():
                    return [x for x in gen()]
                """
            },
        )
        graph = build_call_graph([str(tmp_path)])
        assert graph.functions["mod.gen"].is_generator
        assert not graph.functions["mod.plain"].is_generator
