"""Effect summaries and the call-graph fixpoint.

Each test builds a small tree, runs the fixpoint, and asserts on the
summary of one function — including the witness chain, which is the
part users actually read.  Termination on recursion and mutual
recursion is pinned explicitly: the lattice argument in the module
docstring is only as good as the dedup key it rests on.
"""

from __future__ import annotations

from repro.lint.flow import build_call_graph, compute_summaries

from tests.lint.test_callgraph import write_tree


def summarize(tmp_path, files):
    graph = build_call_graph([str(write_tree(tmp_path, files))])
    return graph, compute_summaries(graph)


class TestDirectEffects:
    def test_direct_nondet_call(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                import random

                def f():
                    return random.random()
                """
            },
        )
        taints = list(summaries["mod.f"].nondet.values())
        assert len(taints) == 1
        assert taints[0].detail == "random.random"

    def test_aliased_nondet_call(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                from time import time as now

                def f():
                    return now()
                """
            },
        )
        assert any(
            t.detail == "time.time"
            for t in summaries["mod.f"].nondet.values()
        )

    def test_global_dict_write(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                CACHE = {}

                def f(k, v):
                    CACHE[k] = v
                """
            },
        )
        assert "global-write:CACHE" in summaries["mod.f"].global_writes

    def test_global_statement_write(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                COUNT = 0

                def f():
                    global COUNT
                    COUNT = 1
                """
            },
        )
        assert "global-write:COUNT" in summaries["mod.f"].global_writes

    def test_local_shadow_is_not_a_global_write(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                CACHE = {}

                def f(k):
                    CACHE = {}
                    CACHE[k] = 1
                    return CACHE
                """
            },
        )
        assert not summaries["mod.f"].global_writes

    def test_mutator_method_on_global(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                ITEMS = []

                def f(v):
                    ITEMS.append(v)
                """
            },
        )
        assert "global-write:ITEMS" in summaries["mod.f"].global_writes

    def test_receiver_write_outside_init(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                class C:
                    def __init__(self):
                        self.ok = 1

                    def bad(self):
                        self.counter = 2
                """
            },
        )
        assert not summaries["mod.C.__init__"].receiver_writes
        assert summaries["mod.C.bad"].receiver_writes

    def test_argument_mutation(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                def f(inbox):
                    inbox.append(1)

                def g(state):
                    state["k"] = 1
                """
            },
        )
        assert "arg-mutation:inbox" in summaries["mod.f"].arg_mutations
        assert "arg-mutation:state" in summaries["mod.g"].arg_mutations

    def test_resource_return(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                def f(path):
                    return open(path)

                def g(path):
                    fh = open(path)
                    return fh
                """
            },
        )
        for q in ("mod.f", "mod.g"):
            kinds = {
                t.kind
                for t in summaries[q].resource_returns.values()
            }
            assert "file handle" in kinds, q


class TestPropagation:
    def test_nondet_chain_two_deep_with_witness(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                import random as r

                def top():
                    return middle()

                def middle():
                    return bottom()

                def bottom():
                    return r.random()
                """
            },
        )
        taints = list(summaries["mod.top"].nondet.values())
        assert len(taints) == 1
        chain = [step.qualname for step in taints[0].chain]
        assert chain[:3] == ["mod.top", "mod.middle", "mod.bottom"]

    def test_global_write_propagates(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                MEMO = {}

                def caller(k):
                    return helper(k)

                def helper(k):
                    MEMO[k] = 1
                """
            },
        )
        assert "global-write:MEMO" in summaries["mod.caller"].global_writes

    def test_cross_module_propagation(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/noisy.py": """
                import random

                def roll():
                    return random.randint(1, 6)
                """,
                "pkg/user.py": """
                from pkg.noisy import roll

                def play():
                    return roll()
                """,
            },
        )
        assert summaries["pkg.user.play"].nondet

    def test_resource_propagates_through_returned_call(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                def make():
                    return open("/tmp/x")

                def relay():
                    return make()
                """
            },
        )
        assert summaries["mod.relay"].resource_returns

    def test_arg_mutation_does_not_propagate_blindly(self, tmp_path):
        # A helper mutating its own parameter says nothing about the
        # caller's values: the caller may pass a fresh local.
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                def helper(acc):
                    acc.append(1)

                def caller():
                    out = []
                    helper(out)
                    return out
                """
            },
        )
        assert summaries["mod.helper"].arg_mutations
        assert not summaries["mod.caller"].arg_mutations


class TestTermination:
    def test_direct_recursion_terminates(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                import random

                def f(n):
                    if n:
                        return f(n - 1)
                    return random.random()
                """
            },
        )
        assert summaries["mod.f"].nondet

    def test_mutual_recursion_terminates(self, tmp_path):
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                CACHE = {}

                def even(n):
                    CACHE[n] = True
                    return n == 0 or odd(n - 1)

                def odd(n):
                    return n != 0 and even(n - 1)
                """
            },
        )
        assert "global-write:CACHE" in summaries["mod.odd"].global_writes
        assert "global-write:CACHE" in summaries["mod.even"].global_writes

    def test_one_witness_per_source(self, tmp_path):
        # two paths to the same source collapse to one taint (first
        # witness wins) — the dedup that bounds the lattice
        _, summaries = summarize(
            tmp_path,
            {
                "mod.py": """
                import random

                def a():
                    return random.random()

                def b():
                    return random.random()

                def top():
                    return a() + b()
                """
            },
        )
        assert len(summaries["mod.top"].nondet) == 1
