"""JSON report shape and the baseline workflow (repro.lint.output)."""

from __future__ import annotations

import json

import pytest

from repro.lint.engine import LintError, LintFinding
from repro.lint.flow import (
    apply_baseline,
    deep_lint_paths,
    findings_to_json,
    load_baseline,
    write_baseline,
)

from tests.lint.test_callgraph import write_tree

NOISY_TREE = {
    "proto.py": """
    import random

    class P(Protocol):
        def step(self, s):
            return random.random()
    """
}


@pytest.fixture
def findings(tmp_path):
    write_tree(tmp_path / "tree", NOISY_TREE)
    return deep_lint_paths([str(tmp_path / "tree")])


class TestJsonReport:
    def test_shape_and_chain(self, findings):
        report = json.loads(findings_to_json(findings))
        assert report["version"] == 1
        assert report["summary"]["total"] == 1
        assert report["summary"]["by_code"] == {"RP401": 1}
        (item,) = report["findings"]
        assert item["code"] == "RP401"
        assert item["path"].endswith("proto.py")
        assert item["symbol"] == "nondet:random.random"
        chain = item["chain"]
        assert chain[0]["qualname"] == "proto.P.step"
        assert all(
            set(step) == {"qualname", "path", "line"} for step in chain
        )

    def test_shallow_findings_serialize_without_chain(self):
        finding = LintFinding(
            code="RP301", message="m", path="x.py", line=3, col=1
        )
        report = json.loads(findings_to_json([finding]))
        assert "chain" not in report["findings"][0]
        assert report["findings"][0]["symbol"] == "m"

    def test_empty_report(self):
        report = json.loads(findings_to_json([]))
        assert report["findings"] == []
        assert report["summary"]["total"] == 0


class TestBaseline:
    def test_roundtrip_suppresses_everything(self, tmp_path, findings):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        baseline = load_baseline(str(baseline_path))
        kept, suppressed, unused = apply_baseline(findings, baseline)
        assert kept == []
        assert suppressed == len(findings)
        assert unused == []

    def test_line_numbers_do_not_churn_the_baseline(
        self, tmp_path, findings
    ):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        # the same tree with a comment pushed above the class: every
        # line moves, the baseline still matches
        shifted = {
            "proto.py": "# a new leading comment\n# another\n"
            + "import random\n\nclass P(Protocol):\n"
            + "    def step(self, s):\n"
            + "        return random.random()\n"
        }
        tree = tmp_path / "shifted"
        for name, body in shifted.items():
            tree.mkdir(exist_ok=True)
            (tree / name).write_text(body)
        moved = deep_lint_paths([str(tree)])
        assert moved and moved[0].line != findings[0].line
        baseline = load_baseline(str(baseline_path))
        # paths differ between the two trees; rewrite them to match
        entries = [
            type(e)(e.code, moved[0].path, e.symbol)
            for e in baseline.entries
        ]
        baseline.entries = entries
        kept, suppressed, _ = apply_baseline(moved, baseline)
        assert kept == [] and suppressed == 1

    def test_new_finding_is_kept(self, tmp_path, findings):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), [])
        baseline = load_baseline(str(baseline_path))
        kept, suppressed, unused = apply_baseline(findings, baseline)
        assert kept == findings
        assert suppressed == 0

    def test_unused_entries_reported(self, tmp_path, findings):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        baseline = load_baseline(str(baseline_path))
        kept, _, unused = apply_baseline([], baseline)
        assert kept == []
        assert len(unused) == len(findings)

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(LintError):
            load_baseline(str(bad))
        bad.write_text('{"suppressions": [{"code": "RP401"}]}')
        with pytest.raises(LintError):
            load_baseline(str(bad))
        with pytest.raises(LintError):
            load_baseline(str(tmp_path / "missing.json"))
