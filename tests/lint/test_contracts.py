"""Contract preflight tests: one ill-formed system per RP2xx code.

Each fixture system violates exactly one hygiene condition, and the
assertions check both the stable code and the *witness* — the concrete
``(state, action, child)`` edge the probe reports, in the style of the
checkers' counterexample runs.
"""

from __future__ import annotations

import pytest

from repro.core.state import GlobalState
from repro.lint import (
    ContractWitness,
    IllFormedSystemError,
    PreflightReport,
    preflight_system,
)
from repro.lint.contracts import preflight_once
from tests.conftest import ToySystem


def clean_system():
    """x -> {a, b}, both terminal-decided: satisfies every contract."""
    return ToySystem(
        edges={
            "x": [("l", "a"), ("r", "b")],
            "a": [("s", "a")],
            "b": [("s", "b")],
        },
        decisions={"a": {0: 0, 1: 0}, "b": {0: 1, 1: 1}},
    )


def _only(report: PreflightReport, code: str):
    assert [f.code for f in report.findings] == [code]
    return report.findings[0]


class _FlickeringSystem(ToySystem):
    """successors() returns the edge list in alternating order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def successors(self, state):
        self.calls += 1
        succs = super().successors(state)
        return succs if self.calls % 2 else list(reversed(succs))


class TestRP201Determinism:
    def test_alternating_order_is_caught(self):
        system = _FlickeringSystem(
            edges={"x": [("l", "a"), ("r", "b")], "a": [], "b": []},
            decisions={"a": {0: 0, 1: 0}, "b": {0: 0, 1: 0}},
        )
        report = preflight_system(
            system, [system.state("x")], codes=frozenset({"RP201"})
        )
        finding = _only(report, "RP201")
        assert "disagreed at index 0" in finding.message
        assert finding.witness == ContractWitness(system.state("x"))

    def test_length_mismatch_is_caught(self):
        class Growing(ToySystem):
            def __init__(self):
                super().__init__(edges={})
                self.calls = 0

            def successors(self, state):
                self.calls += 1
                return [
                    (f"e{i}", self.state("x")) for i in range(self.calls)
                ]

        system = Growing()
        report = preflight_system(
            system, [system.state("x")], codes=frozenset({"RP201"})
        )
        finding = _only(report, "RP201")
        assert "1 then 2 edges" in finding.message


class TestRP202Closure:
    def test_undecided_dead_end_is_caught(self):
        system = ToySystem(edges={"x": [("go", "dead")], "dead": []})
        report = preflight_system(
            system, [system.state("x")], codes=frozenset({"RP202"})
        )
        finding = _only(report, "RP202")
        assert "empty successor set" in finding.message
        assert finding.witness.state == system.state("dead")

    def test_decided_terminal_state_is_not_a_dead_end(self):
        # Engines never expand all-nonfailed-decided states, so an empty
        # successor set there is unobservable and must not be flagged.
        system = ToySystem(
            edges={"x": [("go", "done")], "done": []},
            decisions={"done": {0: 0, 1: 0}},
        )
        report = preflight_system(system, [system.state("x")])
        assert report.ok

    def test_failed_processes_need_not_decide(self):
        system = ToySystem(
            edges={"x": [("go", "done")], "done": []},
            decisions={"done": {1: 0}},
            failed={"done": frozenset({0})},
        )
        report = preflight_system(system, [system.state("x")])
        assert report.ok


class TestRP203FaultyMonotonicity:
    def test_revived_process_is_caught(self):
        system = ToySystem(
            edges={"x": [("revive", "y")], "y": [("s", "y")]},
            decisions={"y": {0: 0, 1: 0}},
            failed={"x": frozenset({1})},
        )
        report = preflight_system(
            system, [system.state("x")], codes=frozenset({"RP203"})
        )
        finding = _only(report, "RP203")
        assert "[1] revived" in finding.message
        assert finding.witness == ContractWitness(
            system.state("x"), "revive", system.state("y")
        )

    def test_growing_failure_set_is_fine(self):
        system = ToySystem(
            edges={"x": [("crash", "y")], "y": [("s", "y")]},
            decisions={"y": {0: 0}},
            failed={"y": frozenset({1})},
        )
        assert preflight_system(system, [system.state("x")]).ok


class TestRP204DecisionIrrevocability:
    def test_changed_decision_is_caught(self):
        system = ToySystem(
            edges={"x": [("flip", "y")], "y": [("s", "y")]},
            decisions={"x": {0: 0, 1: 0}, "y": {0: 1, 1: 0}},
        )
        report = preflight_system(
            system, [system.state("x")], codes=frozenset({"RP204"})
        )
        finding = _only(report, "RP204")
        assert "decision changed from 0 to 1" in finding.message
        assert finding.witness == ContractWitness(
            system.state("x"), "flip", system.state("y")
        )

    def test_forgotten_decision_is_caught(self):
        system = ToySystem(
            edges={"x": [("drop", "y")], "y": [("s", "y")]},
            decisions={"x": {0: 0, 1: 0}, "y": {1: 0}},
        )
        report = preflight_system(
            system, [system.state("x")], codes=frozenset({"RP204"})
        )
        finding = _only(report, "RP204")
        assert "from 0 to None" in finding.message


class TestRP205Hashability:
    def test_unhashable_root_is_caught(self):
        class _Unhashable:
            __hash__ = None

        system = ToySystem(edges={})
        report = preflight_system(system, [_Unhashable()])
        finding = _only(report, "RP205")
        assert "not hashable" in finding.message
        assert not report.complete

    def test_unhashable_child_component_is_caught(self):
        class Listy(ToySystem):
            def successors(self, state):
                # GlobalState hashes eagerly, so the bad component
                # surfaces right here, inside the probe's BFS.
                return [("go", GlobalState(["not", "hashable"], ("y",)))]

        system = Listy(edges={})
        report = preflight_system(system, [system.state("x")])
        finding = _only(report, "RP205")
        assert "not hashable" in finding.message


class TestProbeMechanics:
    def test_clean_system_reports_exhaustive_coverage(self):
        system = clean_system()
        report = preflight_system(system, [system.state("x")])
        assert report.ok
        assert report.complete
        assert report.states_probed == 3
        assert report.edges_probed == 4  # x's two edges + two self-loops
        assert "preflight clean (exhaustive" in report.describe()

    def test_truncated_probe_is_marked_incomplete(self):
        class Endless(ToySystem):
            def successors(self, state):
                name = self._name(state)
                return [("t", self.state(name + "!"))]

        system = Endless(edges={})
        report = preflight_system(
            system, [system.state("x")], max_states=5
        )
        assert report.ok
        assert not report.complete
        assert report.states_probed == 5
        assert "sampled" in report.describe()

    def test_one_finding_per_code(self):
        # Two distinct RP204 violations: only the first witness is kept.
        system = ToySystem(
            edges={
                "x": [("f1", "y"), ("f2", "z")],
                "y": [("s", "y")],
                "z": [("s", "z")],
            },
            decisions={
                "x": {0: 0, 1: 0},
                "y": {0: 1, 1: 0},
                "z": {0: 1, 1: 0},
            },
        )
        report = preflight_system(
            system, [system.state("x")], codes=frozenset({"RP204"})
        )
        assert len(report.findings) == 1

    def test_probe_uses_the_uncached_base(self):
        # A memoizing cache wrapper returns the same list object twice
        # by construction; the probe must look through it or the
        # determinism check is vacuous.
        from repro.core.cache import CachedSystem

        system = _FlickeringSystem(
            edges={"x": [("l", "a"), ("r", "b")], "a": [], "b": []},
            decisions={"a": {0: 0, 1: 0}, "b": {0: 0, 1: 0}},
        )
        cached = CachedSystem(system)
        report = preflight_system(
            cached, [system.state("x")], codes=frozenset({"RP201"})
        )
        _only(report, "RP201")

    def test_raise_if_ill_formed(self):
        system = ToySystem(edges={"x": [("go", "dead")], "dead": []})
        report = preflight_system(system, [system.state("x")])
        with pytest.raises(IllFormedSystemError) as excinfo:
            report.raise_if_ill_formed()
        assert excinfo.value.report is report
        assert "RP202" in str(excinfo.value)

    def test_error_from_plain_text_has_no_report(self):
        err = IllFormedSystemError("shard 3 refused: RP202 ...")
        assert err.report is None


class TestMemoization:
    def test_clean_systems_are_probed_once(self):
        system = clean_system()
        first = preflight_once(system, [system.state("x")])
        assert first is not None and first.ok
        assert preflight_once(system, [system.state("x")]) is None

    def test_ill_formed_systems_keep_reporting(self):
        system = ToySystem(edges={"x": [("go", "dead")], "dead": []})
        for _ in range(2):
            report = preflight_once(system, [system.state("x")])
            assert report is not None and not report.ok
