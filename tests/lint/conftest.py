"""Shared fixtures for the replint tests.

The contract preflight memoizes clean systems per process; tests must
not observe each other's memo entries, so it is cleared around every
test in this package.
"""

from __future__ import annotations

import pytest

from repro.lint.contracts import _clear_memo


@pytest.fixture(autouse=True)
def fresh_preflight_memo():
    _clear_memo()
    yield
    _clear_memo()
