"""The rule inventory must not go stale (ISSUE 10 satellite).

PR 4 hard-coded "RP1xx protocol rules, RP3xx harness rules" in the
package docstring and it rotted the moment RP2xx landed in the listing.
The fix is structural: the registry is the source of truth, the CLI
``--list-rules`` table is generated from it, and these tests assert
that every human-facing inventory (README's rule table, the package
docstring's family overview) covers every registered code.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro.lint
from repro.lint import AST_RULES, FLOW_RULES, all_rules, rule_table

README = Path(__file__).resolve().parents[2] / "README.md"


class TestRegistryIsSourceOfTruth:
    def test_list_rules_table_is_generated_from_registry(self):
        rows = rule_table()
        assert [code for code, _, _ in rows] == sorted(all_rules())
        kinds = {kind for _, kind, _ in rows}
        assert kinds == {"ast", "contract", "flow"}

    def test_registered_families_are_complete(self):
        codes = set(all_rules())
        assert set(AST_RULES) <= codes
        assert set(FLOW_RULES) <= codes
        assert {
            "RP201", "RP202", "RP203", "RP204", "RP205"
        } <= codes

    def test_every_registered_code_appears_in_readme(self):
        readme = README.read_text(encoding="utf-8")
        documented = set(re.findall(r"\bRP\d{3}\b", readme))
        missing = set(all_rules()) - documented
        assert not missing, (
            f"README rule table is missing {sorted(missing)}: update the "
            "'Rule inventory' section"
        )

    def test_docstring_mentions_every_family(self):
        doc = repro.lint.__doc__ or ""
        families = {code[:3] + "xx" for code in all_rules()}
        missing = {f for f in families if f not in doc}
        assert not missing, (
            f"repro.lint docstring does not mention {sorted(missing)}"
        )
