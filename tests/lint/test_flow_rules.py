"""RP4xx/RP5xx rule evaluation — including the three seeded detection
fixtures from the acceptance criteria:

(a) nondeterminism reached only through an aliased import inside a
    helper two calls deep (RP401);
(b) an impure helper mutating a module-level dict reachable from
    ``successors`` (RP402);
(c) a pool payload capturing a file handle (RP501);

each asserted **with its full call-chain witness**, which is the part
that turns a deep finding from an accusation into a diagnosis.
"""

from __future__ import annotations

from repro.lint.flow import FlowWitness, deep_lint_paths

from tests.lint.test_callgraph import write_tree


def deep(tmp_path, files, codes=None):
    write_tree(tmp_path, files)
    return deep_lint_paths([str(tmp_path)], codes)


def by_code(findings, code):
    return [f for f in findings if f.code == code]


class TestRP401Nondeterminism:
    def test_aliased_nondet_two_helpers_deep(self, tmp_path):
        # acceptance fixture (a): the alias and both helpers live in a
        # *different module* from the protocol, the worst case for the
        # shallow rules
        findings = deep(
            tmp_path,
            {
                "helpers.py": """
                import random as r

                def pick(options):
                    return _inner(options)

                def _inner(options):
                    return r.choice(options)
                """,
                "proto.py": """
                from helpers import pick

                class Coin(Protocol):
                    def step(self, state):
                        return pick([0, 1])
                """,
            },
        )
        found = by_code(findings, "RP401")
        assert len(found) == 1
        finding = found[0]
        assert finding.path.endswith("proto.py")
        assert "random.choice" in finding.message
        assert isinstance(finding.witness, FlowWitness)
        chain = [step.qualname for step in finding.witness.chain]
        assert chain[:3] == [
            "proto.Coin.step",
            "helpers.pick",
            "helpers._inner",
        ]
        # the chain ends at the primitive source with its location
        assert "random.choice" in finding.witness.chain[-1].qualname
        assert finding.witness.chain[-1].path.endswith("helpers.py")

    def test_direct_call_in_entry_point(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "proto.py": """
                import time

                class Slow(Layering):
                    def successors(self, state):
                        return [(time.monotonic(), state)]
                """
            },
        )
        assert by_code(findings, "RP401")

    def test_nondet_outside_transition_surface_is_fine(self, tmp_path):
        # harness code may use randomness/clocks freely
        findings = deep(
            tmp_path,
            {
                "bench.py": """
                import random

                def jitter():
                    return random.random()

                class Driver:
                    def run(self):
                        return jitter()
                """
            },
        )
        assert not by_code(findings, "RP401")

    def test_nondet_in_non_system_class_is_fine(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "mod.py": """
                import random

                class Sampler:
                    def successors(self, state):
                        return random.random()
                """
            },
        )
        assert not by_code(findings, "RP401")


class TestRP402GlobalWrites:
    def test_impure_helper_mutating_module_dict(self, tmp_path):
        # acceptance fixture (b): memoization smuggled under successors
        findings = deep(
            tmp_path,
            {
                "layer.py": """
                MEMO = {}

                class Fast(Layering):
                    def successors(self, state):
                        return _memoized(state)

                def _memoized(state):
                    if state not in MEMO:
                        MEMO[state] = [state]
                    return MEMO[state]
                """
            },
        )
        found = by_code(findings, "RP402")
        assert len(found) == 1
        finding = found[0]
        assert "'MEMO'" in finding.message
        chain = [step.qualname for step in finding.witness.chain]
        assert chain[0] == "layer.Fast.successors"
        assert chain[1] == "layer._memoized"

    def test_imported_global_write(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "state.py": "REGISTRY = {}\n",
                "proto.py": """
                from state import REGISTRY

                class P(Protocol):
                    def decide(self, s):
                        REGISTRY[s] = 1
                """,
            },
        )
        assert by_code(findings, "RP402")

    def test_local_dict_is_fine(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "proto.py": """
                class P(Protocol):
                    def successors(self, s):
                        seen = {}
                        seen[s] = 1
                        return seen
                """
            },
        )
        assert not by_code(findings, "RP402")


class TestRP403ReceiverMutation:
    def test_transitive_self_mutation(self, tmp_path):
        # the deep generalization of RP105: the store happens in a
        # helper method, on a Model (outside RP105's Protocol scope)
        findings = deep(
            tmp_path,
            {
                "model.py": """
                class Lazy(Model):
                    def successors(self, state):
                        self._warm()
                        return []

                    def _warm(self):
                        self._cache = {}
                """
            },
        )
        found = by_code(findings, "RP403")
        assert found
        chain = [s.qualname for s in found[0].witness.chain]
        assert chain[:2] == ["model.Lazy.successors", "model.Lazy._warm"]

    def test_init_chain_is_fine(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "model.py": """
                class Eager(Model):
                    def __init__(self):
                        self._cache = {}

                    def successors(self, state):
                        return []
                """
            },
        )
        assert not by_code(findings, "RP403")


class TestRP501PayloadResources:
    def test_pool_payload_capturing_file_handle(self, tmp_path):
        # acceptance fixture (c): the handle is created by a helper, so
        # only the interprocedural return-taint sees it
        findings = deep(
            tmp_path,
            {
                "driver.py": """
                from repro.resilience.pool import run_units

                def _open_log():
                    return open("/tmp/log")

                def work(payload):
                    return payload

                def drive():
                    log = _open_log()
                    units = [(1, log)]
                    return run_units(work, units)
                """
            },
        )
        found = by_code(findings, "RP501")
        assert len(found) == 1
        finding = found[0]
        assert "file handle" in finding.message
        chain = [s.qualname for s in finding.witness.chain]
        assert chain[0] == "driver.drive"
        assert "open" in finding.witness.chain[-1].qualname

    def test_inline_resource_in_payload(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "driver.py": """
                import threading
                from repro.resilience.pool import run_units

                def work(payload):
                    return payload

                def drive():
                    return run_units(
                        work, [(1, threading.Lock())]
                    )
                """
            },
        )
        found = by_code(findings, "RP501")
        assert found and "lock" in found[0].message

    def test_plain_payload_is_fine(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "driver.py": """
                from repro.resilience.pool import run_units

                def work(payload):
                    return payload

                def drive(shards):
                    units = [(i, shard) for i, shard in enumerate(shards)]
                    return run_units(work, units)
                """
            },
        )
        assert not by_code(findings, "RP501")


class TestRP502UnpicklableEntry:
    def test_lambda_entry(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "driver.py": """
                from repro.resilience.pool import run_units

                def drive(units):
                    return run_units(lambda p: p, units)
                """
            },
        )
        assert by_code(findings, "RP502")

    def test_nested_function_entry(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "driver.py": """
                from repro.resilience.pool import run_units

                def drive(units):
                    def work(p):
                        return p
                    return run_units(work, units)
                """
            },
        )
        assert by_code(findings, "RP502")

    def test_module_level_entry_is_fine(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "driver.py": """
                from repro.resilience.pool import run_units

                def work(p):
                    return p

                def drive(units):
                    return run_units(work, units)
                """
            },
        )
        assert not by_code(findings, "RP502")


class TestSelection:
    def test_codes_filter(self, tmp_path):
        files = {
            "proto.py": """
            import random

            MEMO = {}

            class P(Protocol):
                def step(self, s):
                    MEMO[s] = 1
                    return random.random()
            """
        }
        only_401 = deep(tmp_path, files, codes=frozenset({"RP401"}))
        assert {f.code for f in only_401} == {"RP401"}

    def test_clean_tree_is_clean(self, tmp_path):
        findings = deep(
            tmp_path,
            {
                "proto.py": """
                class P(Protocol):
                    def step(self, s):
                        return _double(s)

                def _double(s):
                    return s * 2
                """
            },
        )
        assert findings == []

    def test_findings_are_sorted_and_stable(self, tmp_path):
        files = {
            "a.py": """
            import random

            class A(Protocol):
                def step(self, s):
                    return random.random()
            """,
            "b.py": """
            import time

            class B(Protocol):
                def decide(self, s):
                    return time.time()
            """,
        }
        first = deep(tmp_path, files)
        second = deep_lint_paths([str(tmp_path)])
        assert [f.format() for f in first] == [f.format() for f in second]
        assert [f.path for f in first] == sorted(f.path for f in first)
