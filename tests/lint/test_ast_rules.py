"""Static rule tests: one deliberately ill-formed snippet per code.

Each fixture is the smallest protocol-shaped module exhibiting exactly
the defect its rule exists to catch; the assertions pin the stable code
and the reported location, which are API (tests, CI logs and user
suppressions all key on them).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintError, lint_paths, lint_source
from repro.lint.ast_rules import AST_RULES
from repro.lint.engine import all_rules, resolve_codes, rule_table


def _lint(snippet: str, **kwargs):
    return lint_source(textwrap.dedent(snippet), **kwargs)


def _codes(findings):
    return {f.code for f in findings}


class TestRP101Nondeterminism:
    def test_random_module_call(self):
        findings = _lint(
            """\
            import random

            class Coin(Protocol):
                def step(self, state):
                    return random.choice([0, 1])
            """
        )
        assert _codes(findings) == {"RP101"}
        assert findings[0].line == 5
        assert "random.choice" in findings[0].message

    def test_time_and_bare_names(self):
        findings = _lint(
            """\
            import time
            from random import randint

            class Clocked(SomeModel):
                def successors(self, state):
                    return [(time.time(), randint(0, 1), id(state))]
            """
        )
        assert _codes(findings) == {"RP101"}
        assert len(findings) == 3  # time.time, randint, id

    def test_import_alias_is_resolved(self):
        # ``import random as r`` was a blind spot before the alias map:
        # the rule keyed on the literal attribute root ``random.``
        findings = _lint(
            """\
            import random as r

            class Coin(Protocol):
                def step(self, state):
                    return r.choice([0, 1])
            """
        )
        assert _codes(findings) == {"RP101"}
        assert "random.choice" in findings[0].message
        assert "via alias 'r'" in findings[0].message

    def test_from_import_alias_is_resolved(self):
        findings = _lint(
            """\
            from time import time as now

            class Clocked(Protocol):
                def successors(self, state):
                    return [(now(), state)]
            """
        )
        assert _codes(findings) == {"RP101"}
        assert "time.time" in findings[0].message
        assert "via alias 'now'" in findings[0].message

    def test_innocent_alias_is_fine(self):
        findings = _lint(
            """\
            import itertools as it

            class P(Protocol):
                def step(self, state):
                    return list(it.chain([state]))
            """
        )
        assert findings == []

    def test_outside_system_class_is_fine(self):
        findings = _lint(
            """\
            import random

            def benchmark_seed():
                return random.random()
            """
        )
        assert findings == []


class TestRP102UnorderedIteration:
    def test_for_over_set_literal(self):
        findings = _lint(
            """\
            class Flood(Protocol):
                def step(self, peers):
                    out = []
                    for p in {1, 2, 3}:
                        out.append(p)
                    return out
            """
        )
        assert _codes(findings) == {"RP102"}
        assert findings[0].line == 4

    def test_comprehension_over_set_call(self):
        findings = _lint(
            """\
            class Flood(Layering):
                def step(self, peers):
                    return [p for p in set(peers)]
            """
        )
        assert _codes(findings) == {"RP102"}

    def test_sorted_set_is_fine(self):
        findings = _lint(
            """\
            class Flood(Protocol):
                def step(self, peers):
                    return [p for p in sorted(set(peers))]
            """
        )
        assert findings == []


class TestRP103ArgumentMutation:
    def test_mutator_method_on_argument(self):
        findings = _lint(
            """\
            class Sloppy(Protocol):
                def step(self, state, inbox):
                    inbox.append("seen")
                    return state
            """
        )
        assert _codes(findings) == {"RP103"}
        assert "inbox.append" in findings[0].message

    def test_subscript_assignment_to_argument(self):
        findings = _lint(
            """\
            class Sloppy(SharedMemoryModel):
                def apply(self, state):
                    state.registers[0] = 1
                    return state
            """
        )
        assert _codes(findings) == {"RP103"}

    def test_object_setattr_backdoor(self):
        findings = _lint(
            """\
            class Sloppy(Protocol):
                def step(self, state):
                    object.__setattr__(state, "round", 2)
                    return state
            """
        )
        assert _codes(findings) == {"RP103"}

    def test_local_mutation_is_fine(self):
        findings = _lint(
            """\
            class Tidy(Protocol):
                def step(self, state):
                    out = []
                    out.append(state)
                    return tuple(out)
            """
        )
        assert findings == []


class TestRP104EqWithoutHash:
    def test_eq_without_hash(self):
        findings = _lint(
            """\
            class LocalState:
                def __eq__(self, other):
                    return True
            """
        )
        assert _codes(findings) == {"RP104"}
        assert "'LocalState'" in findings[0].message

    def test_eq_with_hash_is_fine(self):
        findings = _lint(
            """\
            class LocalState:
                def __eq__(self, other):
                    return True

                def __hash__(self):
                    return 0
            """
        )
        assert findings == []

    def test_explicit_hash_assignment_counts(self):
        findings = _lint(
            """\
            class LocalState:
                __hash__ = None

                def __eq__(self, other):
                    return True
            """
        )
        assert findings == []


class TestRP105StatefulProtocol:
    def test_self_mutation_outside_init(self):
        findings = _lint(
            """\
            class Counter(Protocol):
                def __init__(self):
                    self.rounds = 0

                def step(self, state):
                    self.rounds += 1
                    return state
            """
        )
        assert _codes(findings) == {"RP105"}
        assert findings[0].line == 6
        assert "self.rounds" in findings[0].message

    def test_init_assignment_is_fine(self):
        findings = _lint(
            """\
            class Fixed(Protocol):
                def __init__(self, quorum):
                    self.quorum = quorum
            """
        )
        assert findings == []

    def test_models_are_not_in_scope(self):
        # RP105 is a *protocol* statelessness rule; models own mutable
        # machinery (caches, interners) by design.
        findings = _lint(
            """\
            class Lazy(SomeModel):
                def warm(self):
                    self.cache = {}
            """
        )
        assert findings == []


class TestRP301SwallowedBudget:
    def test_bare_except(self):
        findings = _lint(
            """\
            def drive(checker):
                try:
                    return checker.check_all()
                except:
                    return None
            """
        )
        assert _codes(findings) == {"RP301"}

    def test_broad_except_without_reraise(self):
        findings = _lint(
            """\
            def drive(checker):
                try:
                    return checker.check_all()
                except Exception as exc:
                    print(exc)
            """
        )
        assert _codes(findings) == {"RP301"}

    def test_reraise_is_fine(self):
        findings = _lint(
            """\
            def drive(checker):
                try:
                    return checker.check_all()
                except Exception:
                    raise
            """
        )
        assert findings == []

    def test_specific_except_is_fine(self):
        findings = _lint(
            """\
            def drive(checker):
                try:
                    return checker.check_all()
                except ValueError:
                    return None
            """
        )
        assert findings == []

    def test_routed_control_flow_sibling_exempts(self):
        """A sibling that bare-re-raises CancelledError marks the
        broad no-crash handler as deliberate (the serve loop idiom)."""
        findings = _lint(
            """\
            async def handle(server, request):
                try:
                    return await server.dispatch(request)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    return {"status": "error"}
            """
        )
        assert findings == []

    def test_sibling_without_reraise_does_not_exempt(self):
        findings = _lint(
            """\
            async def handle(server, request):
                try:
                    return await server.dispatch(request)
                except asyncio.CancelledError:
                    return None
                except Exception:
                    return {"status": "error"}
            """
        )
        assert _codes(findings) == {"RP301"}

    def test_noncontrol_sibling_does_not_exempt(self):
        """Re-raising an ordinary error class is not a routing marker."""
        findings = _lint(
            """\
            def drive(checker):
                try:
                    return checker.check_all()
                except ValueError:
                    raise
                except Exception:
                    return None
            """
        )
        assert _codes(findings) == {"RP301"}


class TestRP302SwallowedInterrupt:
    """RP302 is scoped to protocol/resilience/serve paths and demands a
    *bare* ``raise`` from BaseException-catching handlers."""

    SCOPED = "src/repro/serve/server.py"

    def _rp302(self, snippet: str, path: str = SCOPED):
        return _lint(snippet, path=path,
                     codes=resolve_codes(select=["RP302"]))

    def test_bare_except_swallowing(self):
        findings = self._rp302(
            """\
            def drain(server):
                try:
                    server.sync()
                except:
                    pass
            """
        )
        assert _codes(findings) == {"RP302"}
        assert findings[0].line == 4
        assert "KeyboardInterrupt" in findings[0].message

    def test_base_exception_without_bare_raise(self):
        findings = self._rp302(
            """\
            def drain(server):
                try:
                    server.sync()
                except BaseException as exc:
                    log(exc)
            """
        )
        assert _codes(findings) == {"RP302"}

    def test_converting_raise_still_flagged(self):
        """``raise Other from exc`` satisfies RP301 but still turns a
        KeyboardInterrupt into an ordinary exception — RP302 catches it."""
        findings = self._rp302(
            """\
            def drain(server):
                try:
                    server.sync()
                except BaseException as exc:
                    raise RuntimeError("wrapped") from exc
            """
        )
        assert _codes(findings) == {"RP302"}

    def test_bare_reraise_is_fine(self):
        findings = self._rp302(
            """\
            def drain(server):
                try:
                    server.sync()
                except BaseException:
                    cleanup()
                    raise
            """
        )
        assert findings == []

    def test_explicit_interrupt_sibling_exempts(self):
        """The pool's worker idiom: KeyboardInterrupt handled on purpose
        first, then a broad handler reporting everything else."""
        findings = self._rp302(
            """\
            def worker(fn):
                try:
                    fn()
                except KeyboardInterrupt:
                    return
                except BaseException as exc:
                    report(exc)
            """
        )
        assert findings == []

    def test_except_exception_is_not_rp302(self):
        """``except Exception`` cannot catch an interrupt; that hazard
        belongs to RP301, not this rule."""
        findings = self._rp302(
            """\
            def drain(server):
                try:
                    server.sync()
                except Exception:
                    pass
            """
        )
        assert findings == []

    def test_out_of_scope_paths_are_ignored(self):
        findings = self._rp302(
            """\
            def bench():
                try:
                    run()
                except:
                    pass
            """,
            path="benchmarks/bench_e17.py",
        )
        assert findings == []

    def test_shipped_tree_is_clean(self):
        """The whole src tree sweeps clean under RP302 — the satellite's
        acceptance bar, pinned so a regression fails loudly."""
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        assert lint_paths([str(src)], select=["RP302"]) == []


class TestRP303UnboundedSocketIO:
    """RP303 is scoped to serve/ paths: every socket connect carries a
    timeout and every awaited stream op is wait_for-bounded."""

    SCOPED = "src/repro/serve/client.py"

    def _rp303(self, snippet: str, path: str = SCOPED):
        return _lint(snippet, path=path,
                     codes=resolve_codes(select=["RP303"]))

    def test_create_connection_without_timeout(self):
        findings = self._rp303(
            """\
            import socket

            def connect(host, port):
                return socket.create_connection((host, port))
            """
        )
        assert _codes(findings) == {"RP303"}
        assert findings[0].line == 4
        assert "timeout" in findings[0].message

    def test_create_connection_with_timeout_is_fine(self):
        findings = self._rp303(
            """\
            import socket

            def connect(host, port, budget):
                return socket.create_connection((host, port), timeout=budget)
            """
        )
        assert findings == []

    def test_settimeout_none_disables_the_bound(self):
        findings = self._rp303(
            """\
            def disarm(sock):
                sock.settimeout(None)
            """
        )
        assert _codes(findings) == {"RP303"}
        assert "settimeout(None)" in findings[0].message

    def test_settimeout_with_a_bound_is_fine(self):
        findings = self._rp303(
            """\
            def arm(sock):
                sock.settimeout(30.0)
            """
        )
        assert findings == []

    def test_bare_awaited_readline(self):
        findings = self._rp303(
            """\
            async def handle(reader):
                return await reader.readline()
            """
        )
        assert _codes(findings) == {"RP303"}
        assert "wait_for" in findings[0].message

    def test_bare_awaited_drain(self):
        findings = self._rp303(
            """\
            async def send(writer, data):
                writer.write(data)
                await writer.drain()
            """
        )
        assert _codes(findings) == {"RP303"}

    def test_wait_for_wrapped_await_is_fine(self):
        """The awaited call is ``asyncio.wait_for`` — the stream op
        inside it is an argument, not the await target."""
        findings = self._rp303(
            """\
            import asyncio

            async def handle(reader, budget):
                return await asyncio.wait_for(reader.readline(), budget)
            """
        )
        assert findings == []

    def test_state_waits_are_not_flagged(self):
        """wait_closed / Event.wait block on server-side state, not on
        bytes a hostile peer must produce."""
        findings = self._rp303(
            """\
            async def teardown(writer, event):
                writer.close()
                await writer.wait_closed()
                await event.wait()
            """
        )
        assert findings == []

    def test_out_of_scope_paths_are_ignored(self):
        findings = self._rp303(
            """\
            import socket

            def connect(host, port):
                return socket.create_connection((host, port))
            """,
            path="src/repro/protocols/quorum.py",
        )
        assert findings == []

    def test_shipped_serve_tree_is_clean(self):
        """The satellite's acceptance bar: the whole src tree — the
        serve package in particular — sweeps clean under RP303."""
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        assert lint_paths([str(src)], select=["RP303"]) == []


class TestRP999SyntaxError:
    def test_unparseable_source_is_a_finding(self):
        findings = _lint("def broken(:\n")
        assert _codes(findings) == {"RP999"}
        assert findings[0].line == 1
        assert "syntax error" in findings[0].message


class TestSelection:
    def test_select_restricts(self):
        source = """\
            import random

            class Coin(Protocol):
                def step(self, state, inbox):
                    inbox.append(1)
                    return random.random()
        """
        every = _lint(source)
        assert _codes(every) == {"RP101", "RP103"}
        only_103 = _lint(source, codes=resolve_codes(select=["RP103"]))
        assert _codes(only_103) == {"RP103"}

    def test_unknown_code_raises(self):
        with pytest.raises(LintError, match="RP777"):
            resolve_codes(select=["RP777"])
        with pytest.raises(LintError, match="RP000"):
            resolve_codes(ignore=["RP000"])

    def test_ignore_drops_codes(self):
        codes = resolve_codes(ignore=["RP101"])
        assert "RP101" not in codes
        assert "RP102" in codes

    def test_codes_are_case_insensitive(self):
        assert resolve_codes(select=["rp101"]) == frozenset({"RP101"})


class TestRegistry:
    def test_every_static_rule_is_registered(self):
        registry = all_rules()
        for code in AST_RULES:
            assert registry[code].kind == "ast"

    def test_contract_rules_share_the_namespace(self):
        registry = all_rules()
        for code in ("RP201", "RP202", "RP203", "RP204", "RP205"):
            assert registry[code].kind == "contract"

    def test_rule_table_is_sorted_by_code(self):
        codes = [row[0] for row in rule_table()]
        assert codes == sorted(codes)


class TestPaths:
    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "protocols"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "import random\n"
            "class Coin(Protocol):\n"
            "    def step(self):\n"
            "        return random.random()\n"
        )
        (pkg / "good.py").write_text("X = 1\n")
        findings = lint_paths([str(tmp_path)])
        assert _codes(findings) == {"RP101"}
        assert findings[0].path.endswith("bad.py")

    def test_missing_path_is_a_lint_error(self, tmp_path):
        with pytest.raises(LintError, match="no such file"):
            lint_paths([str(tmp_path / "gone.py")])

    def test_finding_format_is_path_line_col_code(self, tmp_path):
        file = tmp_path / "bad.py"
        file.write_text(
            "class S(Protocol):\n"
            "    def step(self, box):\n"
            "        box.clear()\n"
        )
        (finding,) = lint_paths([str(file)])
        assert finding.format().startswith(f"{file}:3:")
        assert " RP103 " in finding.format()
