"""Unit tests for the similarity relation, including env refinements."""

from repro.core.similarity import (
    is_similarity_connected,
    s_diameter,
    similar,
    similarity_graph,
    similarity_witnesses,
)
from repro.core.state import GlobalState
from repro.models.async_mp import AsyncMessagePassingModel, mp_env
from repro.models.sync import SynchronousModel, sync_env
from repro.protocols.floodset import FloodSet
from tests.conftest import ToySystem


def gs(env, *locals_):
    return GlobalState(env, tuple(locals_))


class TestWitnesses:
    def setup_method(self):
        self.sys = ToySystem(edges={}, n=3)

    def test_single_difference(self):
        x, y = gs("toy", "a", "b", "c"), gs("toy", "a", "z", "c")
        assert similarity_witnesses(x, y, self.sys) == frozenset({1})

    def test_equal_states_every_witness(self):
        x = gs("toy", "a", "b", "c")
        assert similarity_witnesses(x, x, self.sys) == frozenset({0, 1, 2})

    def test_two_differences_not_similar(self):
        x, y = gs("toy", "a", "b", "c"), gs("toy", "z", "w", "c")
        assert not similar(x, y, self.sys)

    def test_env_difference_not_similar_by_default(self):
        x, y = gs("e1", "a", "b", "c"), gs("e2", "a", "b", "c")
        assert not similar(x, y, self.sys)

    def test_witness_condition_needs_other_nonfailed(self):
        # n=2: witness j needs some i != j non-failed in both states.
        sys2 = ToySystem(
            edges={},
            failed={"a": frozenset({0})},
            n=2,
        )
        x = GlobalState("toy", ("a", "a"))
        y = GlobalState("toy", ("a", "b"))
        # differ at process 1 -> witness must be 1; process 0 is failed
        # at x, so condition (ii) fails.
        assert similarity_witnesses(x, y, sys2) == frozenset()


class TestSyncEnvRefinement:
    """The Section 6 refinement: failure records compared modulo j."""

    def setup_method(self):
        self.model = SynchronousModel(FloodSet(2), 3, 1)

    def test_failed_record_discounted_for_witness(self):
        assert self.model.envs_agree_modulo(
            sync_env(frozenset({1})), sync_env(frozenset()), 1
        )

    def test_other_failures_still_compared(self):
        assert not self.model.envs_agree_modulo(
            sync_env(frozenset({2})), sync_env(frozenset()), 1
        )

    def test_equal_records_always_agree(self):
        # Budget is NOT similarity's business (it gates the crash
        # display, not Definition 3.1): equal records agree modulo any
        # witness even when failing the witness would exceed t.
        assert self.model.envs_agree_modulo(
            sync_env(frozenset({2})), sync_env(frozenset({2})), 1
        )

    def test_display_fails_at_budget_edge(self):
        """...but the crash-display property genuinely fails there: with
        the budget spent, j cannot be silenced, so the continuation
        cannot keep the states agreeing modulo j."""
        from repro.core.faulty import check_crash_display
        from repro.models.sync import fail_action

        model = SynchronousModel(FloodSet(2), 3, 1)
        base = model.initial_state((0, 1, 1))
        x = model.apply(base, fail_action((0, frozenset({1}))))
        y = model.apply(base, fail_action((0, frozenset({1, 2}))))
        # x, y agree modulo 2 (process 2 heard 0's message or not), both
        # already carry the lone permitted failure.
        witnesses = similarity_witnesses(x, y, model)
        assert 2 in witnesses
        assert not check_crash_display(model, x, y, 2, steps=4)


class TestAsyncEnvRefinement:
    """Incoming channels of the witness are accounted to the witness."""

    def setup_method(self):
        self.model = AsyncMessagePassingModel(FloodSet(2), 3)

    def test_incoming_to_witness_discounted(self):
        env_a = mp_env((((0, 1), ("m",)),))  # message 0 -> 1 in transit
        env_b = mp_env(())
        assert self.model.envs_agree_modulo(env_a, env_b, 1)
        assert not self.model.envs_agree_modulo(env_a, env_b, 0)

    def test_outgoing_from_witness_not_discounted(self):
        env_a = mp_env((((1, 0), ("m",)),))  # message 1 -> 0 in transit
        env_b = mp_env(())
        assert not self.model.envs_agree_modulo(env_a, env_b, 1)

    def test_equal_bags_agree(self):
        env = mp_env((((0, 1), ("m",)),))
        assert self.model.envs_agree_modulo(env, env, 2)


class TestGraphs:
    def test_similarity_graph_edges(self):
        sys = ToySystem(edges={}, n=2)
        a = gs("toy", "x", "y")
        b = gs("toy", "x", "z")
        c = gs("toy", "w", "q")
        g = similarity_graph([a, b, c], sys)
        assert g.has_edge(a, b)
        assert not g.has_edge(a, c)

    def test_connectivity(self):
        sys = ToySystem(edges={}, n=2)
        a = gs("toy", "x", "y")
        b = gs("toy", "x", "z")
        assert is_similarity_connected([a, b], sys)
        c = gs("toy", "p", "q")
        assert not is_similarity_connected([a, b, c], sys)

    def test_s_diameter_chain(self):
        sys = ToySystem(edges={}, n=2)
        # a chain x0 - x1 - x2 differing one coordinate at a time
        x0 = gs("toy", "a", "a")
        x1 = gs("toy", "a", "b")
        x2 = gs("toy", "c", "b")
        assert s_diameter([x0, x1, x2], sys) == 2
