"""Unit tests for executions, run witnesses and pasting."""

import pytest

from repro.core.run import Execution, RunWitness, paste, pasting_violations
from repro.core.state import GlobalState


def st(name):
    return GlobalState("toy", (name,))


def ex(*names):
    states = tuple(st(n) for n in names)
    actions = tuple(f"{a}->{b}" for a, b in zip(names, names[1:]))
    return Execution(states, actions)


class TestExecution:
    def test_singleton(self):
        e = Execution((st("x"),))
        assert e.length == 0
        assert e.initial == e.final == st("x")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Execution(())

    def test_action_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Execution((st("a"), st("b")), ())

    def test_extend(self):
        e = ex("a").extend("go", st("b"))
        assert e.length == 1
        assert e.final == st("b")
        assert e.actions == ("go",)

    def test_concat(self):
        left, right = ex("a", "b"), ex("b", "c")
        joined = left.concat(right)
        assert [s.locals[0] for s in joined] == ["a", "b", "c"]

    def test_concat_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ex("a", "b").concat(ex("c", "d"))

    def test_prefix_suffix(self):
        e = ex("a", "b", "c")
        assert e.prefix(1).final == st("b")
        assert e.suffix(1).initial == st("b")
        assert e.prefix(0).length == 0
        assert e.suffix(e.length).length == 0

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            ex("a", "b").prefix(5)

    def test_transitions(self):
        e = ex("a", "b", "c")
        triples = list(e.transitions())
        assert len(triples) == 2
        assert triples[0] == (st("a"), "a->b", st("b"))

    def test_len_iter(self):
        e = ex("a", "b")
        assert len(e) == 2
        assert list(e) == [st("a"), st("b")]


class TestRunWitness:
    def make(self):
        prefix = ex("a", "b")
        cycle = ex("b", "c", "b")
        return RunWitness(prefix, cycle)

    def test_state_at_prefix(self):
        w = self.make()
        assert w.state_at(0) == st("a")
        assert w.state_at(1) == st("b")

    def test_state_at_wraps(self):
        w = self.make()
        assert w.state_at(2) == st("c")
        assert w.state_at(3) == st("b")
        assert w.state_at(4) == st("c")
        assert w.state_at(101) == st("b") if (101 - 1) % 2 == 0 else True

    def test_action_at(self):
        w = self.make()
        assert w.action_at(0) == "a->b"
        assert w.action_at(1) == "b->c"
        assert w.action_at(2) == "c->b"
        assert w.action_at(3) == "b->c"

    def test_finite_prefix_consistent(self):
        w = self.make()
        unrolled = w.finite_prefix(6)
        for k in range(7):
            assert unrolled.states[k] == w.state_at(k)

    def test_cycle_must_close(self):
        with pytest.raises(ValueError):
            RunWitness(ex("a", "b"), ex("b", "c"))

    def test_cycle_must_start_at_prefix_end(self):
        with pytest.raises(ValueError):
            RunWitness(ex("a", "b"), ex("c", "c"))

    def test_cycle_must_be_nonempty(self):
        with pytest.raises(ValueError):
            RunWitness(ex("a", "b"), Execution((st("b"),)))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            self.make().state_at(-1)


class TestPaste:
    def test_paste_at_shared_state(self):
        r = ex("a", "b", "c")
        r2 = ex("x", "b", "y")
        pasted = paste(r, 1, r2, 1)
        assert [s.locals[0] for s in pasted] == ["a", "b", "y"]

    def test_paste_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paste(ex("a", "b"), 0, ex("c", "d"), 0)

    def test_pasting_violations_on_closed_set(self):
        execs = [ex("a", "b"), ex("b", "c"), ex("a", "b", "c")]
        allowed = {("a", "b"), ("b", "c")}

        def member(e):
            return all(
                (u.locals[0], v.locals[0]) in allowed
                for u, _, v in e.transitions()
            )

        assert pasting_violations(execs, member) == []

    def test_pasting_violations_detected(self):
        # "b" appears in both, but pasting a->b with b->z is not a member.
        execs = [ex("a", "b"), ex("b", "z")]

        def member(e):
            names = tuple(s.locals[0] for s in e.states)
            return names in {("a", "b"), ("b", "z")}

        violations = pasting_violations(execs, member)
        assert violations  # pasting produced an execution outside the set
