"""Unit tests for the bivalent-run engine (Lemma 4.1 / Theorem 4.2)."""

import pytest

from repro.core.bivalence import (
    NoBivalentSuccessor,
    bivalent_successor,
    build_bivalent_execution,
    build_bivalent_lasso,
)
from repro.core.valence import ValenceAnalyzer
from tests.conftest import ToySystem


@pytest.fixture
def bivalent_chain_system():
    """x0 -> x1 -> x2 -> x0 ... all bivalent (each can branch to 0 or 1)."""
    return ToySystem(
        edges={
            "x0": [("n", "x1"), ("d0", "t0")],
            "x1": [("n", "x2"), ("d1", "t1")],
            "x2": [("n", "x0"), ("d0", "t0")],
            "t0": [("s", "t0")],
            "t1": [("s", "t1")],
        },
        decisions={"t0": {0: 0, 1: 0}, "t1": {0: 1, 1: 1}},
    )


class TestBivalentSuccessor:
    def test_picks_bivalent_child(self, bivalent_chain_system):
        sys = bivalent_chain_system
        an = ValenceAnalyzer(sys)
        step = bivalent_successor(sys, an, sys.state("x0"))
        assert step.state == sys.state("x1")
        assert step.action == "n"

    def test_requires_bivalent_start(self, bivalent_chain_system):
        sys = bivalent_chain_system
        an = ValenceAnalyzer(sys)
        with pytest.raises(ValueError):
            bivalent_successor(sys, an, sys.state("t0"))

    def test_no_bivalent_successor_raises_with_diagnosis(self):
        # x is bivalent, but its layer {a, b} splits 0/1-univalent and is
        # NOT valence connected — Lemma 4.1's premise fails, so the
        # engine reports NoBivalentSuccessor with layer_connected=False.
        sys = ToySystem(
            edges={
                "x": [("l", "a"), ("r", "b")],
                "a": [("s", "a")],
                "b": [("s", "b")],
            },
            decisions={"a": {0: 0, 1: 0}, "b": {0: 1, 1: 1}},
        )
        an = ValenceAnalyzer(sys)
        with pytest.raises(NoBivalentSuccessor) as err:
            bivalent_successor(sys, an, sys.state("x"))
        assert err.value.layer_connected is False

    def test_connectivity_check_flag(self, bivalent_chain_system):
        sys = bivalent_chain_system
        an = ValenceAnalyzer(sys)
        step = bivalent_successor(
            sys, an, sys.state("x0"), check_connectivity=True
        )
        assert step.layer_valence_connected


class TestBuildExecution:
    def test_all_states_bivalent(self, bivalent_chain_system):
        sys = bivalent_chain_system
        an = ValenceAnalyzer(sys)
        execution = build_bivalent_execution(sys, an, sys.state("x0"), 7)
        assert execution.length == 7
        for state in execution:
            assert an.valence(state).bivalent

    def test_rejects_non_bivalent_start(self, bivalent_chain_system):
        sys = bivalent_chain_system
        an = ValenceAnalyzer(sys)
        with pytest.raises(ValueError):
            build_bivalent_execution(sys, an, sys.state("t1"), 3)


class TestBuildLasso:
    def test_lasso_closes(self, bivalent_chain_system):
        sys = bivalent_chain_system
        an = ValenceAnalyzer(sys)
        lasso = build_bivalent_lasso(sys, an, sys.state("x0"))
        assert lasso.cycle.initial == lasso.cycle.final
        assert lasso.cycle.length >= 1
        # every state of the infinite run is bivalent
        for k in range(12):
            assert an.valence(lasso.state_at(k)).bivalent

    def test_lasso_on_real_layering(self, quorum_permutation):
        from repro.core.connectivity import lemma_3_6

        layering = quorum_permutation
        an = ValenceAnalyzer(layering, max_states=300_000)
        start = lemma_3_6(
            layering.model.initial_states((0, 1)), layering, an
        )
        lasso = build_bivalent_lasso(layering, an, start)
        for k in range(lasso.prefix.length + lasso.cycle.length + 1):
            assert an.valence(lasso.state_at(k)).bivalent
