"""Public-API sanity: exports exist, __all__ is accurate, version set."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.models",
    "repro.layerings",
    "repro.protocols",
    "repro.tasks",
    "repro.analysis",
    "repro.resilience",
    "repro.util",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} must declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_no_duplicate_exports():
    for package in PACKAGES:
        module = importlib.import_module(package)
        exported = list(getattr(module, "__all__", []))
        assert len(exported) == len(set(exported)), package


def test_submodules_importable():
    import pkgutil

    import repro

    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        importlib.import_module(info.name)


def test_readme_quickstart_executes():
    """The README's quickstart snippet must keep working verbatim."""
    from repro import (
        ConsensusChecker,
        FloodSet,
        StSynchronousLayering,
        SynchronousModel,
    )

    doomed = SynchronousModel(FloodSet(rounds=1), n=3, t=1)
    report = ConsensusChecker(StSynchronousLayering(doomed)).check_all(doomed)
    assert report.verdict.value == "agreement-violation"

    safe = SynchronousModel(FloodSet(rounds=2), n=3, t=1)
    assert ConsensusChecker(StSynchronousLayering(safe)).check_all(
        safe
    ).satisfied
