"""Unit tests for valence connectivity and Lemmas 3.3–3.6."""

import pytest

from repro.core.connectivity import (
    con0_chain,
    find_bivalent,
    is_valence_connected,
    lemma_3_3_edges,
    lemma_3_4,
    lemma_3_5,
    lemma_3_6,
    shared_valence,
    valence_graph,
)
from repro.core.state import GlobalState, agree_modulo
from repro.core.valence import ValenceAnalyzer
from tests.conftest import ToySystem


@pytest.fixture
def diamond_with_analyzer(toy_diamond):
    return toy_diamond, ValenceAnalyzer(toy_diamond)


class TestSharedValence:
    def test_bivalent_shares_with_univalent(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        assert shared_valence(sys.state("x"), sys.state("a"), an)
        assert shared_valence(sys.state("x"), sys.state("b"), an)

    def test_opposite_univalents_do_not_share(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        assert not shared_valence(sys.state("a"), sys.state("b"), an)


class TestValenceGraph:
    def test_graph_connected_through_bivalent(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        states = [sys.state(s) for s in ("a", "x", "b")]
        assert is_valence_connected(states, an)

    def test_disconnected_without_bivalent(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        states = [sys.state("a"), sys.state("b")]
        assert not is_valence_connected(states, an)

    def test_all_same_value_connected(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        assert is_valence_connected([sys.state("a"), sys.state("da")], an)

    def test_edge_count(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        g = valence_graph([sys.state(s) for s in ("a", "x", "b")], an)
        assert g.edge_count() == 2


class TestLemma34:
    def test_returns_bivalent(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        states = [sys.state(s) for s in ("a", "x", "b")]
        assert lemma_3_4(states, an) == sys.state("x")

    def test_none_when_single_value(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        assert lemma_3_4([sys.state("a"), sys.state("da")], an) is None

    def test_none_when_disconnected(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        assert lemma_3_4([sys.state("a"), sys.state("b")], an) is None

    def test_find_bivalent(self, diamond_with_analyzer):
        sys, an = diamond_with_analyzer
        assert find_bivalent([sys.state("a"), sys.state("x")], an) == sys.state("x")
        assert find_bivalent([sys.state("a")], an) is None


class TestCon0Chain:
    def test_endpoints_and_steps(self):
        x = GlobalState("e", ("a0", "a1", "a2"))
        y = GlobalState("e", ("b0", "b1", "b2"))
        chain = con0_chain(x, y)
        assert chain[0] == x
        assert chain[-1] == y
        assert len(chain) == 4
        for k, (a, b) in enumerate(zip(chain, chain[1:])):
            # chain walks boundary n..0: step k flips process n-1-k
            assert agree_modulo(a, b, x.n - 1 - k)

    def test_env_mismatch_rejected(self):
        with pytest.raises(ValueError):
            con0_chain(
                GlobalState("e", ("a",)), GlobalState("f", ("b",))
            )

    def test_identical_states(self):
        x = GlobalState("e", ("a", "b"))
        chain = con0_chain(x, x)
        assert all(s == x for s in chain)


class TestLemmasOnRealModel:
    """Lemmas 3.3/3.5/3.6 on the S_1 mobile system with FloodSet(2)."""

    def test_lemma_3_3_no_violations_on_initials(self, mobile_floodset):
        an = ValenceAnalyzer(mobile_floodset)
        initials = mobile_floodset.model.initial_states((0, 1))
        assert lemma_3_3_edges(initials, mobile_floodset, an) == []

    def test_lemma_3_5_con0(self, mobile_floodset):
        an = ValenceAnalyzer(mobile_floodset)
        initials = mobile_floodset.model.initial_states((0, 1))
        assert lemma_3_5(initials, mobile_floodset, an)

    def test_lemma_3_6_bivalent_initial(self, mobile_floodset):
        an = ValenceAnalyzer(mobile_floodset)
        initials = mobile_floodset.model.initial_states((0, 1))
        bivalent = lemma_3_6(initials, mobile_floodset, an)
        result = an.valence(bivalent)
        assert result.bivalent

    def test_unanimous_initials_univalent(self, mobile_floodset):
        an = ValenceAnalyzer(mobile_floodset)
        model = mobile_floodset.model
        zero = model.initial_state((0, 0, 0))
        one = model.initial_state((1, 1, 1))
        assert an.valence(zero).univalent_value() == 0
        assert an.valence(one).univalent_value() == 1

    def test_lemma_3_5_raises_on_disconnected_precondition(
        self, mobile_floodset
    ):
        an = ValenceAnalyzer(mobile_floodset)
        model = mobile_floodset.model
        # two opposite unanimous corners are not similarity connected alone
        corners = [
            model.initial_state((0, 0, 0)),
            model.initial_state((1, 1, 1)),
        ]
        with pytest.raises(ValueError):
            lemma_3_5(corners, mobile_floodset, an)
