"""Unit tests for crash display and fault independence, across models."""

import pytest

from repro.core.faulty import (
    agree_modulo_refined,
    check_crash_display,
    check_fault_independence,
    crash_continuation,
    displays_no_finite_failure,
    failure_free_continuation,
)
from repro.core.similarity import similarity_witnesses
from repro.layerings.s1_mobile import S1MobileLayering
from repro.layerings.synchronic_rw import SynchronicRWLayering
from repro.models.async_mp import AsyncMessagePassingModel
from repro.models.mobile import MobileModel, prefix_action
from repro.models.shared_memory import SharedMemoryModel
from repro.models.sync import SynchronousModel
from repro.protocols.candidates import QuorumDecide
from repro.protocols.floodset import FloodSet
from repro.protocols.full_information import FullInformationProtocol


def all_models(n=3):
    fi = FullInformationProtocol(phases=3)
    return {
        "mobile": MobileModel(fi, n),
        "sync": SynchronousModel(fi, n, 1),
        "rw": SharedMemoryModel(fi, n),
        "amp": AsyncMessagePassingModel(fi, n),
    }


class TestContinuations:
    @pytest.mark.parametrize("name", ["mobile", "sync", "rw", "amp"])
    def test_crash_continuation_actions_are_enabled(self, name):
        from itertools import islice

        model = all_models()[name]
        state = model.initial_state((0, 1, 1))
        from repro.core.faulty import apply_continuation

        trace = apply_continuation(
            model, state, crash_continuation(model, 2), 12
        )
        assert len(trace) == 13

    @pytest.mark.parametrize("name", ["mobile", "sync", "rw", "amp"])
    def test_fault_independence(self, name):
        model = all_models()[name]
        state = model.initial_state((0, 1, 1))
        assert check_fault_independence(model, state)

    def test_fault_independence_after_failure(self):
        model = all_models()["sync"]
        state = model.initial_state((0, 1, 1))
        # fail process 0 fully
        action = frozenset({(0, frozenset({1, 2}))})
        failed_state = model.apply(state, action)
        assert model.failed_at(failed_state) == frozenset({0})
        assert check_fault_independence(model, failed_state)


class TestNoFiniteFailure:
    def test_async_models_display_no_finite_failure(self):
        models = all_models()
        for name in ("mobile", "rw", "amp"):
            model = models[name]
            states = [
                model.initial_state((0, 1, 1)),
                model.initial_state((1, 0, 1)),
            ]
            assert displays_no_finite_failure(model, states)

    def test_sync_model_records_failures(self):
        model = all_models()["sync"]
        state = model.initial_state((0, 1, 1))
        action = frozenset({(1, frozenset({0}))})
        assert model.failed_at(model.apply(state, action)) == frozenset({1})


class TestCrashDisplay:
    def test_mobile_layer_pairs(self):
        """The S_1 chain pairs display an arbitrary crash failure."""
        layering = S1MobileLayering(MobileModel(FloodSet(2), 3))
        x0 = layering.model.initial_state((0, 1, 1))
        for j in range(3):
            for k in range(3):
                a = layering.apply(x0, prefix_action(j, k))
                b = layering.apply(x0, prefix_action(j, k + 1))
                if a == b:
                    continue
                witnesses = similarity_witnesses(a, b, layering)
                assert witnesses, (j, k)
                w = min(witnesses)
                assert check_crash_display(layering, a, b, w, steps=10)

    def test_rw_initial_pairs(self):
        layering = SynchronicRWLayering(
            SharedMemoryModel(QuorumDecide(2), 3)
        )
        model = layering.model
        a = model.initial_state((0, 1, 1))
        b = model.initial_state((1, 1, 1))
        assert check_crash_display(layering, a, b, 0, steps=12)

    def test_rejects_non_agreeing_pair(self):
        layering = S1MobileLayering(MobileModel(FloodSet(2), 3))
        a = layering.model.initial_state((0, 1, 1))
        b = layering.model.initial_state((1, 0, 1))  # differ at 2 processes
        with pytest.raises(ValueError):
            check_crash_display(layering, a, b, 0)

    def test_agree_modulo_refined_sync(self):
        model = SynchronousModel(FloodSet(2), 3, 1)
        x0 = model.initial_state((0, 1, 1))
        # fail 0 partially vs no failure: states agree modulo 0 under the
        # refined comparison iff only process 0's receipt set changed...
        clean = model.apply(x0, frozenset())
        failed = model.apply(x0, frozenset({(0, frozenset({1}))}))
        # process 1 differs too (it missed 0's message) — not modulo 0.
        assert not agree_modulo_refined(model, clean, failed, 0)
        # but modulo 1 the envs differ only by 0's failure record, which
        # is NOT discounted for witness 1:
        assert not agree_modulo_refined(model, clean, failed, 1)
