"""Documentation coverage: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro


def _contract_inherited(cls, mname: str) -> bool:
    """A method whose name is declared-with-docstring on a base class (or
    a typing.Protocol it implements) inherits its documented contract."""
    for base in cls.__mro__[1:]:
        member = base.__dict__.get(mname)
        if member is not None and (getattr(member, "__doc__", "") or "").strip():
            return True
    return False


def iter_public_items():
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        module = importlib.import_module(info.name)
        yield info.name, "module", module
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != info.name:
                continue  # re-exports documented at their home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield f"{info.name}.{name}", "item", obj
                if inspect.isclass(obj):
                    for mname, member in vars(obj).items():
                        if mname.startswith("_"):
                            continue
                        if not inspect.isfunction(member):
                            continue
                        if _contract_inherited(obj, mname):
                            continue
                        yield (
                            f"{info.name}.{name}.{mname}",
                            "method",
                            member,
                        )


def test_every_module_documented():
    undocumented = [
        qualname
        for qualname, kind, obj in iter_public_items()
        if kind == "module" and not (obj.__doc__ or "").strip()
    ]
    assert not undocumented, undocumented


def test_every_public_class_and_function_documented():
    undocumented = [
        qualname
        for qualname, kind, obj in iter_public_items()
        if kind == "item" and not (obj.__doc__ or "").strip()
    ]
    assert not undocumented, undocumented


def test_public_method_doc_coverage_high():
    items = [
        (qualname, obj)
        for qualname, kind, obj in iter_public_items()
        if kind == "method"
    ]
    undocumented = [
        qualname for qualname, obj in items if not (obj.__doc__ or "").strip()
    ]
    # Interface-mandated overrides (initial_local, decision, transition,
    # apply, ...) inherit their contract from the documented base; allow
    # them, but keep the overall bar high.
    coverage = 1 - len(undocumented) / max(1, len(items))
    assert coverage >= 0.5, (
        f"method doc coverage {coverage:.0%}; undocumented: "
        f"{undocumented[:20]}"
    )
