"""Unit tests for global states and agreement-modulo."""

import pytest

from repro.core.state import (
    GlobalState,
    agree_modulo,
    agreement_witnesses,
    differing_processes,
)


def gs(env, *locals_):
    return GlobalState(env, tuple(locals_))


class TestGlobalState:
    def test_n(self):
        assert gs("e", "a", "b", "c").n == 3

    def test_local_access(self):
        x = gs("e", "a", "b")
        assert x.local(0) == "a"
        assert x.local(1) == "b"

    def test_hashable_and_equal(self):
        assert gs("e", "a") == gs("e", "a")
        assert hash(gs("e", "a")) == hash(gs("e", "a"))
        assert gs("e", "a") != gs("f", "a")

    def test_replace_local(self):
        x = gs("e", "a", "b")
        y = x.replace_local(1, "z")
        assert y == gs("e", "a", "z")
        assert x == gs("e", "a", "b")  # original untouched

    def test_replace_local_out_of_range(self):
        with pytest.raises(IndexError):
            gs("e", "a").replace_local(5, "z")

    def test_replace_locals_bulk(self):
        x = gs("e", "a", "b", "c")
        y = x.replace_locals({0: "x", 2: "z"})
        assert y == gs("e", "x", "b", "z")

    def test_replace_env(self):
        assert gs("e", "a").replace_env("f") == gs("f", "a")

    def test_locals_coerced_to_tuple(self):
        x = GlobalState("e", ["a", "b"])
        assert isinstance(x.locals, tuple)
        assert hash(x)


class TestAgreeModulo:
    def test_identical_states_agree_modulo_anyone(self):
        x = gs("e", "a", "b")
        assert agree_modulo(x, x, 0)
        assert agree_modulo(x, x, 1)

    def test_one_difference(self):
        x, y = gs("e", "a", "b"), gs("e", "a", "z")
        assert agree_modulo(x, y, 1)
        assert not agree_modulo(x, y, 0)

    def test_env_difference_blocks(self):
        x, y = gs("e", "a", "b"), gs("f", "a", "b")
        assert not agree_modulo(x, y, 0)

    def test_two_differences_block(self):
        x, y = gs("e", "a", "b"), gs("e", "z", "w")
        assert not agree_modulo(x, y, 0)
        assert not agree_modulo(x, y, 1)

    def test_different_sizes(self):
        assert not agree_modulo(gs("e", "a"), gs("e", "a", "b"), 0)


class TestDifferingProcesses:
    def test_none_differ(self):
        x = gs("e", "a", "b")
        assert differing_processes(x, x) == frozenset()

    def test_some_differ(self):
        x, y = gs("e", "a", "b", "c"), gs("e", "a", "z", "w")
        assert differing_processes(x, y) == frozenset({1, 2})

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            differing_processes(gs("e", "a"), gs("e", "a", "b"))


class TestAgreementWitnesses:
    def test_equal_states_all_witnesses(self):
        x = gs("e", "a", "b", "c")
        assert agreement_witnesses(x, x) == frozenset({0, 1, 2})

    def test_single_diff_single_witness(self):
        x, y = gs("e", "a", "b"), gs("e", "z", "b")
        assert agreement_witnesses(x, y) == frozenset({0})

    def test_env_diff_no_witnesses(self):
        x, y = gs("e", "a"), gs("f", "a")
        assert agreement_witnesses(x, y) == frozenset()

    def test_multi_diff_no_witnesses(self):
        x, y = gs("e", "a", "b"), gs("e", "z", "w")
        assert agreement_witnesses(x, y) == frozenset()
