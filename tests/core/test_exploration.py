"""Unit tests for reachability exploration and statistics."""

import pytest

from repro.core.exploration import explore, reachable_states
from repro.core.valence import ExplorationLimitExceeded
from repro.resilience.budget import Budget
from tests.conftest import ToySystem


@pytest.fixture
def chain_system():
    edges = {f"s{i}": [("n", f"s{i+1}")] for i in range(5)}
    edges["s5"] = [("s", "s5")]
    return ToySystem(edges=edges)


class TestReachableStates:
    def test_depths(self, chain_system):
        sys = chain_system
        depths = reachable_states(sys, [sys.state("s0")])
        assert depths[sys.state("s0")] == 0
        assert depths[sys.state("s5")] == 5
        assert len(depths) == 6

    def test_max_depth(self, chain_system):
        sys = chain_system
        depths = reachable_states(sys, [sys.state("s0")], max_depth=2)
        assert len(depths) == 3

    def test_multiple_roots_deduped(self, chain_system):
        sys = chain_system
        depths = reachable_states(
            sys, [sys.state("s0"), sys.state("s0"), sys.state("s3")]
        )
        assert depths[sys.state("s3")] == 0

    def test_limit(self, chain_system):
        sys = chain_system
        with pytest.raises(ExplorationLimitExceeded):
            reachable_states(sys, [sys.state("s0")], max_states=2)


class TestExplore:
    def test_stats_shape(self, chain_system):
        sys = chain_system
        stats = explore(sys, [sys.state("s0")])
        assert stats.states == 6
        assert stats.depth_reached == 5
        assert stats.frontier_sizes == [1] * 6
        assert stats.min_layer_size == 1
        assert stats.max_layer_size == 1

    def test_sharing_ratio(self):
        # x has two actions to the same child: one duplicate edge at the
        # set level is collapsed per state, but both a and b lead to c.
        sys = ToySystem(
            edges={
                "x": [("l", "a"), ("r", "b")],
                "a": [("n", "c")],
                "b": [("n", "c")],
                "c": [("s", "c")],
            }
        )
        stats = explore(sys, [sys.state("x")])
        assert stats.duplicate_hits >= 1
        assert 0 < stats.sharing_ratio < 1

    def test_real_layering_stats(self, mobile_floodset):
        layering = mobile_floodset
        stats = explore(
            layering,
            [layering.model.initial_state((0, 1, 1))],
            max_depth=2,
        )
        assert stats.states > 1
        # S_1 has n(n+1) = 12 actions but duplicates collapse
        assert stats.max_layer_size <= 12


class TestEdgeAccounting:
    """``stats.edges`` counts generated (action, child) pairs — the same
    accounting ``reachable_states`` charges its budget with.  Regression:
    ``explore`` used to count only *distinct* children per expansion, so
    its edge numbers (and E9's sharing_ratio) disagreed with the budget
    charged for the identical walk."""

    def _fanin(self):
        # x reaches a twice through different actions: 2 generated pairs,
        # 1 distinct child.  Self-loops keep the successor function total.
        return ToySystem(
            edges={
                "x": [("l", "a"), ("r", "a"), ("m", "b")],
                "a": [("s", "a")],
                "b": [("s", "b")],
            }
        )

    def test_duplicate_actions_counted_per_pair(self):
        sys = self._fanin()
        stats = explore(sys, [sys.state("x")])
        # x generates 3 pairs, a and b one self-loop each.
        assert stats.edges == 5
        # (r, a) is a duplicate pair, and both self-loops re-hit their
        # origin: 3 of the 5 generated successors were already known.
        assert stats.duplicate_hits == 3

    def test_edge_budget_agrees_with_reachable_states(self):
        sys = self._fanin()
        roots = [sys.state("x")]
        stats = explore(sys, roots)
        # The identical walk fits a budget of exactly stats.edges ...
        depths = reachable_states(
            sys, roots, max_states=Budget(max_edges=stats.edges)
        )
        assert len(depths) == stats.states
        # ... and trips one edge below it, in both engines.
        short = Budget(max_edges=stats.edges - 1)
        with pytest.raises(ExplorationLimitExceeded):
            reachable_states(sys, roots, max_states=short)
        clipped = explore(sys, roots, max_states=short)
        assert not clipped.complete and clipped.limit == "edges"

    def test_reachable_states_edge_trip_nonstrict_partial(self):
        sys = self._fanin()
        depths = reachable_states(
            sys,
            [sys.state("x")],
            max_states=Budget(max_edges=1),
            strict=False,
        )
        assert sys.state("x") in depths  # partial map, not an exception


class TestRootFrontierBudget:
    """Seeding the root frontier charges the state budget like any other
    discovery.  Regression: both explorers used to discard the
    ``charge_state`` return for roots, so a root set larger than the
    state budget blew straight past it."""

    def _roots(self, chain_system):
        return [chain_system.state(f"s{i}") for i in range(6)]

    def test_reachable_states_strict_raises_while_seeding(self, chain_system):
        with pytest.raises(ExplorationLimitExceeded, match="seeding"):
            reachable_states(
                chain_system,
                self._roots(chain_system),
                max_states=Budget(max_states=3),
            )

    def test_reachable_states_nonstrict_returns_partial_roots(
        self, chain_system
    ):
        depths = reachable_states(
            chain_system,
            self._roots(chain_system),
            max_states=Budget(max_states=3),
            strict=False,
        )
        # The trip fires on the charge that exceeds the budget; nothing
        # beyond the root frontier is explored.
        assert len(depths) == 4
        assert all(d == 0 for d in depths.values())

    def test_explore_root_frontier_trips(self, chain_system):
        roots = self._roots(chain_system)
        stats = explore(
            chain_system, roots, max_states=Budget(max_states=3)
        )
        assert not stats.complete
        assert stats.limit == "states"
        assert stats.states == 4
        assert stats.edges == 0  # stopped before expanding anything
        with pytest.raises(ExplorationLimitExceeded):
            explore(
                chain_system,
                roots,
                max_states=Budget(max_states=3),
                strict=True,
            )
