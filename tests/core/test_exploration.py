"""Unit tests for reachability exploration and statistics."""

import pytest

from repro.core.exploration import explore, reachable_states
from repro.core.valence import ExplorationLimitExceeded
from tests.conftest import ToySystem


@pytest.fixture
def chain_system():
    edges = {f"s{i}": [("n", f"s{i+1}")] for i in range(5)}
    edges["s5"] = [("s", "s5")]
    return ToySystem(edges=edges)


class TestReachableStates:
    def test_depths(self, chain_system):
        sys = chain_system
        depths = reachable_states(sys, [sys.state("s0")])
        assert depths[sys.state("s0")] == 0
        assert depths[sys.state("s5")] == 5
        assert len(depths) == 6

    def test_max_depth(self, chain_system):
        sys = chain_system
        depths = reachable_states(sys, [sys.state("s0")], max_depth=2)
        assert len(depths) == 3

    def test_multiple_roots_deduped(self, chain_system):
        sys = chain_system
        depths = reachable_states(
            sys, [sys.state("s0"), sys.state("s0"), sys.state("s3")]
        )
        assert depths[sys.state("s3")] == 0

    def test_limit(self, chain_system):
        sys = chain_system
        with pytest.raises(ExplorationLimitExceeded):
            reachable_states(sys, [sys.state("s0")], max_states=2)


class TestExplore:
    def test_stats_shape(self, chain_system):
        sys = chain_system
        stats = explore(sys, [sys.state("s0")])
        assert stats.states == 6
        assert stats.depth_reached == 5
        assert stats.frontier_sizes == [1] * 6
        assert stats.min_layer_size == 1
        assert stats.max_layer_size == 1

    def test_sharing_ratio(self):
        # x has two actions to the same child: one duplicate edge at the
        # set level is collapsed per state, but both a and b lead to c.
        sys = ToySystem(
            edges={
                "x": [("l", "a"), ("r", "b")],
                "a": [("n", "c")],
                "b": [("n", "c")],
                "c": [("s", "c")],
            }
        )
        stats = explore(sys, [sys.state("x")])
        assert stats.duplicate_hits >= 1
        assert 0 < stats.sharing_ratio < 1

    def test_real_layering_stats(self, mobile_floodset):
        layering = mobile_floodset
        stats = explore(
            layering,
            [layering.model.initial_state((0, 1, 1))],
            max_depth=2,
        )
        assert stats.states > 1
        # S_1 has n(n+1) = 12 actions but duplicates collapse
        assert stats.max_layer_size <= 12
