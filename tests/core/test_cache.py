"""Unit tests for the memoizing, state-interning successor-system cache."""

import pickle

import pytest

from repro.core.cache import (
    CachedSystem,
    CacheStats,
    aggregate_stats,
    merge_cache_stats,
    resolve_cache,
)
from repro.core.state import GlobalState
from tests.conftest import ToySystem


class CountingSystem:
    """A ToySystem proxy that counts calls into the wrapped system."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = {"successors": 0, "failed_at": 0, "decisions": 0}

    def successors(self, state):
        self.calls["successors"] += 1
        return self._inner.successors(state)

    def failed_at(self, state):
        self.calls["failed_at"] += 1
        return self._inner.failed_at(state)

    def decisions(self, state):
        self.calls["decisions"] += 1
        return self._inner.decisions(state)

    def nonfaulty_under(self, action):
        return self._inner.nonfaulty_under(action)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture
def toy():
    return ToySystem(
        edges={
            "x": [("l", "a"), ("r", "b")],
            "a": [("d", "da")],
            "b": [("d", "db")],
            "da": [("s", "da")],
            "db": [("s", "db")],
        },
        decisions={"da": {0: 0, 1: 0}, "db": {0: 1, 1: 1}},
    )


class TestMemoization:
    def test_second_lookup_skips_the_system(self, toy):
        counting = CountingSystem(toy)
        cached = CachedSystem(counting)
        state = toy.state("x")
        first = cached.successors(state)
        second = cached.successors(state)
        assert counting.calls["successors"] == 1
        assert first is second  # the memo entry itself is returned

    def test_results_match_the_wrapped_system(self, toy):
        cached = CachedSystem(toy)
        for name in ("x", "a", "b", "da", "db"):
            state = toy.state(name)
            assert cached.successors(state) == toy.successors(state)
            assert cached.failed_at(state) == toy.failed_at(state)
            assert cached.decisions(state) == toy.decisions(state)

    def test_empty_successor_list_is_cached(self):
        # Falsy entries must still count as cache hits (_MISS sentinel).
        inner = ToySystem(edges={})
        counting = CountingSystem(inner)
        cached = CachedSystem(counting)
        state = inner.state("lonely")
        assert cached.successors(state) == []
        assert cached.successors(state) == []
        assert counting.calls["successors"] == 1
        assert cached.stats().hits == 1

    def test_all_three_tables_are_independent(self, toy):
        counting = CountingSystem(toy)
        cached = CachedSystem(counting)
        state = toy.state("da")
        for _ in range(2):
            cached.successors(state)
            cached.failed_at(state)
            cached.decisions(state)
        assert counting.calls == {
            "successors": 1,
            "failed_at": 1,
            "decisions": 1,
        }
        stats = cached.stats()
        assert stats.hits == 3 and stats.misses == 3

    def test_nonfaulty_under_memoized(self, toy):
        cached = CachedSystem(toy)
        assert cached.nonfaulty_under("l") == cached.nonfaulty_under("l")
        assert cached.stats().hits >= 1


class TestInterning:
    def test_equal_states_consolidate_to_one_object(self, toy):
        cached = CachedSystem(toy)
        one = GlobalState("toy", ("x", "x"))
        two = GlobalState("toy", ("x", "x"))
        assert one is not two
        assert cached.intern(one) is cached.intern(two)
        assert cached.stats().intern_hits == 1

    def test_successor_children_are_interned(self, toy):
        cached = CachedSystem(toy)
        # a and b both step to distinct GlobalState objects for "da"/"db"
        # on every ToySystem call; through the cache each distinct value
        # has exactly one canonical object.
        (_, da1), = cached.successors(toy.state("a"))
        da2 = cached.intern(GlobalState("toy", ("da", "da")))
        assert da1 is da2

    def test_interning_preserves_value(self, toy):
        cached = CachedSystem(toy)
        original = GlobalState("toy", ("a", "a"))
        canonical = cached.intern(GlobalState("toy", ("a", "a")))
        assert canonical == original
        assert hash(canonical) == hash(original)


class TestLRUEviction:
    def test_bound_is_enforced(self, toy):
        cached = CachedSystem(toy, max_entries=2)
        for name in ("x", "a", "b", "da", "db"):
            cached.successors(toy.state(name))
        assert len(cached._successors) <= 2
        assert cached.stats().evictions == 3

    def test_evicted_entries_recompute_correctly(self, toy):
        counting = CountingSystem(toy)
        cached = CachedSystem(counting, max_entries=1)
        x = toy.state("x")
        a = toy.state("a")
        first = list(cached.successors(x))
        cached.successors(a)  # evicts x
        again = list(cached.successors(x))  # recomputed, same value
        assert again == first
        assert counting.calls["successors"] == 3

    def test_recently_used_entries_survive(self, toy):
        counting = CountingSystem(toy)
        cached = CachedSystem(counting, max_entries=2)
        x, a, b = toy.state("x"), toy.state("a"), toy.state("b")
        cached.successors(x)
        cached.successors(a)
        cached.successors(x)  # refresh x: a is now least recent
        cached.successors(b)  # evicts a, not x
        cached.successors(x)
        assert counting.calls["successors"] == 3  # x never recomputed

    def test_invalid_bound_rejected(self, toy):
        with pytest.raises(ValueError):
            CachedSystem(toy, max_entries=0)


class TestResolveCache:
    def test_none_and_false_leave_the_system_alone(self, toy):
        assert resolve_cache(toy, None) is toy
        assert resolve_cache(toy, False) is toy

    def test_true_wraps_unbounded(self, toy):
        cached = resolve_cache(toy, True)
        assert isinstance(cached, CachedSystem)
        assert cached.max_entries is None
        assert cached.uncached is toy

    def test_int_wraps_with_bound(self, toy):
        cached = resolve_cache(toy, 128)
        assert cached.max_entries == 128

    def test_prebuilt_cache_is_shared(self, toy):
        shared = CachedSystem(toy)
        assert resolve_cache(toy, shared) is shared
        assert resolve_cache(shared, shared) is shared

    def test_shared_cache_for_wrong_system_rejected(self, toy):
        other = ToySystem(edges={"y": [("s", "y")]})
        shared = CachedSystem(other)
        with pytest.raises(ValueError):
            resolve_cache(toy, shared)

    def test_already_cached_system_not_rewrapped(self, toy):
        cached = CachedSystem(toy)
        assert resolve_cache(cached, True) is cached
        with pytest.raises(TypeError):
            CachedSystem(cached)


class TestTransparency:
    def test_unknown_attributes_pass_through(self, toy):
        cached = CachedSystem(toy)
        assert cached.n == toy.n
        assert cached.model is toy  # ToySystem is its own model
        with pytest.raises(AttributeError):
            cached._no_such_private_attribute

    def test_pickle_keeps_config_drops_contents(self, toy):
        cached = CachedSystem(toy, max_entries=7)
        cached.successors(toy.state("x"))
        assert cached.stats().misses == 1
        clone = pickle.loads(pickle.dumps(cached))
        assert isinstance(clone, CachedSystem)
        assert clone.max_entries == 7
        fresh = clone.stats()
        assert fresh.hits == 0 and fresh.misses == 0 and fresh.entries == 0
        # The clone still answers correctly (warming its own cache).
        assert clone.successors(toy.state("x")) == toy.successors(
            toy.state("x")
        )

    def test_clear_drops_entries_keeps_counters(self, toy):
        cached = CachedSystem(toy)
        cached.successors(toy.state("x"))
        cached.successors(toy.state("x"))
        cached.clear()
        stats = cached.stats()
        assert stats.entries == 0 and stats.interned == 0
        assert stats.hits == 1 and stats.misses == 1


class TestStats:
    def test_hit_ratio(self):
        stats = CacheStats(3, 1, 0, 0, 0, 0, 0)
        assert stats.hit_ratio == 0.75
        assert CacheStats(0, 0, 0, 0, 0, 0, 0).hit_ratio == 0.0

    def test_describe_mentions_the_essentials(self):
        text = CacheStats(10, 5, 4, 7, 2, 1, 2048).describe()
        assert "10 hits" in text and "5 misses" in text
        assert "7 interned" in text and "2048 bytes" in text
        assert "1 eviction" in text

    def test_merge_sums_componentwise(self):
        merged = merge_cache_stats(
            [CacheStats(1, 2, 3, 4, 5, 6, 7), CacheStats(10, 20, 30, 40, 50, 60, 70)]
        )
        assert merged == CacheStats(11, 22, 33, 44, 55, 66, 77)

    def test_aggregate_includes_live_and_retired_caches(self, toy):
        before = aggregate_stats()
        live = CachedSystem(toy)
        live.successors(toy.state("x"))
        live.successors(toy.state("x"))
        dead = CachedSystem(toy)
        dead.successors(toy.state("a"))
        del dead  # retirement preserves its counters
        after = aggregate_stats()
        assert after.hits - before.hits >= 1
        assert after.misses - before.misses >= 2

    def test_explore_snapshots_cache_stats(self, toy):
        from repro.core.exploration import explore

        stats = explore(toy, [toy.state("x")], cache=True)
        assert stats.cache_stats is not None
        assert stats.cache_stats.misses > 0
        uncached = explore(toy, [toy.state("x")])
        assert uncached.cache_stats is None
