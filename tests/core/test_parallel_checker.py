"""Parallel ``check_all``: identical verdicts, crash-tolerant sweeps.

The tentpole guarantee: ``check_all(..., workers=N)`` is a pure function
of its inputs — verdict, witness, statistics and checkpoint are byte-for
-byte what the sequential sweep produces, for every verdict class and
across model families.  On top of that, a worker SIGKILLed mid-assignment
is retried transparently, and an assignment that crashes deterministically
is quarantined as UNKNOWN-with-cause without failing the other
assignments.
"""

import os
import re
import signal

import pytest

from repro.core.checker import ConsensusChecker, Verdict
from repro.layerings.st_synchronous import StSynchronousLayering
from repro.models.sync import SynchronousModel
from repro.protocols.floodset import FloodSet
from repro.resilience.pool import FAULT_CRASH, PoolConfig


def _scrub_clock(text):
    """Blank the wall-clock fragment of a report detail — the one
    legitimately nondeterministic part of an otherwise exact merge."""
    return re.sub(r"\d+\.\d+s", "_s", text)


def _assert_reports_equal(parallel, sequential):
    assert parallel.verdict is sequential.verdict
    assert parallel.inputs == sequential.inputs
    assert _scrub_clock(parallel.detail) == _scrub_clock(sequential.detail)
    assert parallel.states_explored == sequential.states_explored
    if sequential.execution is None:
        assert parallel.execution is None
    else:
        assert parallel.execution.actions == sequential.execution.actions
        assert parallel.execution.states == sequential.execution.states
    if sequential.cycle is None:
        assert parallel.cycle is None
    else:
        assert parallel.cycle.actions == sequential.cycle.actions


class TestParallelEqualsSequential:
    """Acceptance: identical results for at least two model families."""

    def test_synchronous_family_satisfied(self, st_floodset_tight):
        sequential = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model
        )
        parallel = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model, workers=4
        )
        assert sequential.satisfied
        _assert_reports_equal(parallel, sequential)

    def test_synchronous_family_refuted(self, st_floodset_fast):
        sequential = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model
        )
        parallel = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model, workers=4
        )
        assert sequential.refuted
        _assert_reports_equal(parallel, sequential)

    def test_shared_memory_family(self, quorum_synchronic_rw):
        sequential = ConsensusChecker(quorum_synchronic_rw).check_all(
            quorum_synchronic_rw.model
        )
        parallel = ConsensusChecker(quorum_synchronic_rw).check_all(
            quorum_synchronic_rw.model, workers=4
        )
        _assert_reports_equal(parallel, sequential)

    def test_mobile_family(self, mobile_floodset):
        sequential = ConsensusChecker(mobile_floodset).check_all(
            mobile_floodset.model
        )
        parallel = ConsensusChecker(mobile_floodset).check_all(
            mobile_floodset.model, workers=2
        )
        _assert_reports_equal(parallel, sequential)

    def test_unknown_checkpoint_parity(self, st_floodset_tight):
        """A budget that trips mid-sweep must produce the same UNKNOWN —
        same detail, same resumable cursor — in both engines."""
        sequential = ConsensusChecker(
            st_floodset_tight, max_states=10
        ).check_all(st_floodset_tight.model)
        parallel = ConsensusChecker(
            st_floodset_tight, max_states=10
        ).check_all(st_floodset_tight.model, workers=3)
        assert sequential.inconclusive
        assert parallel.verdict is Verdict.UNKNOWN
        assert _scrub_clock(parallel.detail) == _scrub_clock(
            sequential.detail
        )
        assert parallel.states_explored == sequential.states_explored
        assert (
            parallel.checkpoint.assignment_index
            == sequential.checkpoint.assignment_index
        )
        assert (
            parallel.checkpoint.states_total
            == sequential.checkpoint.states_total
        )

    def test_resume_from_parallel_checkpoint(self, st_floodset_tight):
        """A parallel UNKNOWN's checkpoint resumes to the sequential
        baseline's verdict (the two engines interoperate)."""
        baseline = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model
        )
        stopped = ConsensusChecker(
            st_floodset_tight, max_states=10
        ).check_all(st_floodset_tight.model, workers=2)
        assert stopped.inconclusive
        resumed = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model, checkpoint=stopped.checkpoint
        )
        assert resumed.verdict is baseline.verdict
        assert resumed.states_explored == baseline.states_explored

    def test_workers_one_is_the_sequential_engine(self, st_floodset_fast):
        sequential = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model
        )
        one = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model, workers=1
        )
        _assert_reports_equal(one, sequential)


class KillOnAssignment(StSynchronousLayering):
    """An ``S^t`` layering whose successor function SIGKILLs the process
    on one chosen input assignment — a stand-in for a native crash
    (segfault, OOM kill) striking mid-assignment.

    With *marker* set the crash happens only while the marker file is
    absent (the first attempt writes it, so the retry succeeds); without
    a marker the crash is deterministic and the assignment must be
    quarantined.
    """

    def __init__(self, model, doomed, marker=None):
        super().__init__(model)
        self.doomed = tuple(doomed)
        self.marker = marker

    def successors(self, state):
        inputs = tuple(local.input for local in state.locals)
        if inputs == self.doomed:
            if self.marker is None:
                os.kill(os.getpid(), signal.SIGKILL)
            elif not os.path.exists(self.marker):
                with open(self.marker, "w") as fh:
                    fh.write("first attempt crashed here")
                os.kill(os.getpid(), signal.SIGKILL)
        return super().successors(state)


class TestCrashTolerance:
    def test_sigkill_mid_assignment_retries_to_success(self, tmp_path):
        """One transient kill: the sweep's verdict is the clean run's."""
        marker = str(tmp_path / "crashed-once")
        clean = StSynchronousLayering(SynchronousModel(FloodSet(2), 3, 1))
        baseline = ConsensusChecker(clean).check_all(clean.model)
        flaky = KillOnAssignment(
            SynchronousModel(FloodSet(2), 3, 1), doomed=(0, 1, 1),
            marker=marker,
        )
        report = ConsensusChecker(flaky).check_all(
            flaky.model,
            workers=2,
            pool=PoolConfig(workers=2, max_retries=2, retry_backoff=0.01),
        )
        assert report.verdict is baseline.verdict
        assert report.states_explored == baseline.states_explored
        assert os.path.exists(marker)  # the kill really happened

    def test_deterministic_crasher_quarantined_as_unknown(self):
        """A permanently crashing assignment: UNKNOWN with the fault
        cause and a resumable cursor, not an aborted sweep."""
        doomed = KillOnAssignment(
            SynchronousModel(FloodSet(2), 3, 1), doomed=(1, 1, 1)
        )
        report = ConsensusChecker(doomed).check_all(
            doomed.model,
            workers=2,
            pool=PoolConfig(workers=2, max_retries=1, retry_backoff=0.01),
        )
        assert report.verdict is Verdict.UNKNOWN
        assert report.inputs == (1, 1, 1)
        assert "quarantined" in report.detail
        assert FAULT_CRASH in report.detail
        # Every assignment before the doomed one completed and counted.
        assert report.states_explored > 0
        assert report.checkpoint is not None
        assert report.checkpoint.assignment_index == 7  # (1,1,1) is last


class TestShardingKnobs:
    """``shard_states`` and ``steal`` change the schedule, never the
    verdict: the ordered-span merge is schedule-independent."""

    def test_finest_shards_identical_verdicts(self, st_floodset_tight):
        sequential = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model
        )
        parallel = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model, workers=3, shard_states=1
        )
        _assert_reports_equal(parallel, sequential)

    def test_coarse_shards_identical_verdicts(self, st_floodset_fast):
        sequential = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model
        )
        parallel = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model, workers=2, shard_states=3
        )
        assert sequential.refuted
        _assert_reports_equal(parallel, sequential)

    def test_shard_larger_than_sweep_identical_verdicts(
        self, st_floodset_fast
    ):
        sequential = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model
        )
        parallel = ConsensusChecker(st_floodset_fast).check_all(
            st_floodset_fast.model, workers=2, shard_states=10_000
        )
        _assert_reports_equal(parallel, sequential)

    def test_steal_disabled_identical_verdicts(self, st_floodset_tight):
        sequential = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model
        )
        parallel = ConsensusChecker(st_floodset_tight).check_all(
            st_floodset_tight.model,
            workers=3,
            pool=PoolConfig(workers=3, steal=False),
        )
        _assert_reports_equal(parallel, sequential)

    def test_invalid_shard_states_rejected(self, st_floodset_fast):
        with pytest.raises(ValueError):
            ConsensusChecker(st_floodset_fast).check_all(
                st_floodset_fast.model, workers=2, shard_states=0
            )
