"""Unit tests for the exhaustive consensus checker."""

import pytest

from repro.core.checker import ConsensusChecker, Verdict
from repro.core.state import GlobalState
from tests.conftest import ToySystem


class TestToyVerdicts:
    def test_satisfied_on_clean_system(self):
        sys = ToySystem(
            edges={"x": [("d", "t")], "t": [("s", "t")]},
            decisions={"t": {0: 0, 1: 0}},
        )
        report = ConsensusChecker(sys).check(sys.state("x"), (0, 0))
        assert report.verdict is Verdict.SATISFIED
        assert report.satisfied

    def test_agreement_violation(self):
        sys = ToySystem(
            edges={"x": [("d", "bad")], "bad": [("s", "bad")]},
            decisions={"bad": {0: 0, 1: 1}},
        )
        report = ConsensusChecker(sys).check(sys.state("x"), (0, 1))
        assert report.verdict is Verdict.AGREEMENT
        assert report.execution.final == sys.state("bad")
        assert report.inputs == (0, 1)

    def test_validity_violation(self):
        sys = ToySystem(
            edges={"x": [("d", "t")], "t": [("s", "t")]},
            decisions={"t": {0: 5, 1: 5}},
        )
        report = ConsensusChecker(sys).check(sys.state("x"), (0, 1))
        assert report.verdict is Verdict.VALIDITY
        assert "5" in report.detail

    def test_decision_violation_with_lasso(self):
        sys = ToySystem(
            edges={
                "x": [("c", "c1")],
                "c1": [("f", "c2")],
                "c2": [("b", "c1")],
            },
        )
        report = ConsensusChecker(sys).check(sys.state("x"), (0, 1))
        assert report.verdict is Verdict.DECISION
        witness = report.run_witness()
        # the lasso really cycles
        assert witness.cycle.initial == witness.cycle.final

    def test_write_once_violation(self):
        sys = ToySystem(
            edges={
                "x": [("d", "a")],
                "a": [("u", "b")],
                "b": [("s", "b")],
            },
            decisions={"a": {0: 0}, "b": {0: 1, 1: 1}},
        )
        # preflight=False: this exercises the checker's own in-exploration
        # write-once guard; the contract preflight would (correctly) refuse
        # the system as ILL_FORMED before the BFS ever ran.
        report = ConsensusChecker(sys, preflight=False).check(
            sys.state("x"), (0, 1)
        )
        assert report.verdict is Verdict.WRITE_ONCE

    def test_faulty_starvation_is_not_decision_violation(self):
        # A cycle starving only a process that is faulty under the cycle's
        # actions is not a violation.
        class OneFaultyToy(ToySystem):
            def nonfaulty_under(self, action):
                return frozenset({0})  # process 1 faulty under every action

        sys = OneFaultyToy(
            edges={
                "x": [("c", "c1")],
                "c1": [("f", "c2")],
                "c2": [("b", "c1")],
            },
            decisions={"c1": {0: 0}, "c2": {0: 0}},
        )
        report = ConsensusChecker(sys).check(sys.state("x"), (0, 0))
        # process 0 decided on the cycle; process 1 is faulty: satisfied.
        assert report.verdict is Verdict.SATISFIED

    def test_run_witness_requires_decision_verdict(self):
        sys = ToySystem(
            edges={"x": [("d", "t")], "t": [("s", "t")]},
            decisions={"t": {0: 0, 1: 0}},
        )
        report = ConsensusChecker(sys).check(sys.state("x"), (0, 0))
        with pytest.raises(ValueError):
            report.run_witness()


class TestWitnessReplay:
    def test_agreement_witness_replays(self, st_floodset_fast):
        layering = st_floodset_fast
        report = ConsensusChecker(layering).check_all(layering.model)
        assert report.verdict is Verdict.AGREEMENT
        # Replay the schedule from the initial state of the reported inputs.
        state = layering.model.initial_state(report.inputs)
        assert state == report.execution.initial
        for action in report.execution.actions:
            state = layering.apply(state, action)
        assert state == report.execution.final
        decided = layering.decisions(state)
        failed = layering.failed_at(state)
        values = {v for i, v in decided.items() if i not in failed}
        assert len(values) > 1  # the violation is really there

    def test_decision_witness_replays(self, quorum_permutation):
        from repro.models.async_mp import AsyncMessagePassingModel
        from repro.layerings.permutation import PermutationLayering
        from repro.protocols.candidates import WaitForAll

        layering = PermutationLayering(
            AsyncMessagePassingModel(WaitForAll(), 3)
        )
        report = ConsensusChecker(layering, max_states=300_000).check_all(
            layering.model
        )
        assert report.verdict is Verdict.DECISION
        witness = report.run_witness()
        # Replay prefix + two cycle turns through the layering.
        state = witness.prefix.initial
        for k in range(witness.prefix.length + 2 * witness.cycle.length):
            state_expected = witness.state_at(k + 1)
            state = layering.apply(state, witness.action_at(k))
            assert state == state_expected


class TestCheckAll:
    def test_satisfied_aggregate(self, st_floodset_tight):
        layering = st_floodset_tight
        report = ConsensusChecker(layering).check_all(layering.model)
        assert report.satisfied
        assert "8 input assignments" in report.detail

    def test_first_violation_returned(self, st_floodset_fast):
        layering = st_floodset_fast
        report = ConsensusChecker(layering).check_all(layering.model)
        assert not report.satisfied
        assert report.inputs is not None
