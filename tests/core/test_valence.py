"""Unit tests for the exact valence analyzer, on synthetic systems."""

import pytest

from repro.core.valence import (
    ExplorationLimitExceeded,
    ValenceAnalyzer,
    ValenceResult,
)
from repro.resilience.budget import Budget
from tests.conftest import ToySystem


class TestValenceResult:
    def test_bivalent(self):
        r = ValenceResult(frozenset({0, 1}), False)
        assert r.bivalent and not r.univalent

    def test_univalent_value(self):
        r = ValenceResult(frozenset({1}), False)
        assert r.univalent
        assert r.univalent_value() == 1

    def test_univalent_value_raises_on_bivalent(self):
        with pytest.raises(ValueError):
            ValenceResult(frozenset({0, 1}), False).univalent_value()

    def test_shared_valence(self):
        a = ValenceResult(frozenset({0, 1}), False)
        b = ValenceResult(frozenset({1}), False)
        c = ValenceResult(frozenset({0}), False)
        assert a.shares_valence_with(b)
        assert a.shares_valence_with(c)
        assert not b.shares_valence_with(c)


class TestDiamond:
    def test_root_bivalent(self, toy_diamond):
        an = ValenceAnalyzer(toy_diamond)
        assert an.valence(toy_diamond.state("x")).values == frozenset({0, 1})

    def test_branches_univalent(self, toy_diamond):
        an = ValenceAnalyzer(toy_diamond)
        assert an.valence(toy_diamond.state("a")).univalent_value() == 0
        assert an.valence(toy_diamond.state("b")).univalent_value() == 1

    def test_no_divergence(self, toy_diamond):
        an = ValenceAnalyzer(toy_diamond)
        assert not an.valence(toy_diamond.state("x")).diverges

    def test_terminal_states_not_expanded(self, toy_diamond):
        an = ValenceAnalyzer(toy_diamond)
        r = an.valence(toy_diamond.state("da"))
        assert r.values == frozenset({0})
        assert not r.diverges

    def test_memoization(self, toy_diamond):
        an = ValenceAnalyzer(toy_diamond)
        an.valence(toy_diamond.state("x"))
        count = an.explored_states
        an.valence(toy_diamond.state("a"))
        assert an.explored_states == count  # already covered


class TestCycles:
    def test_undecided_cycle_diverges(self, toy_cycle_undecided):
        an = ValenceAnalyzer(toy_cycle_undecided)
        r = an.valence(toy_cycle_undecided.state("x"))
        assert r.diverges
        assert r.values == frozenset({0})

    def test_cycle_member_diverges(self, toy_cycle_undecided):
        an = ValenceAnalyzer(toy_cycle_undecided)
        assert an.valence(toy_cycle_undecided.state("c1")).diverges

    def test_values_propagate_around_cycle(self):
        # c1 <-> c2, and c2 -> t0 (decides 0), c1 -> t1 (decides 1).
        # Both cycle members must see BOTH values (the SCC fold).
        sys = ToySystem(
            edges={
                "c1": [("f", "c2"), ("d", "t1")],
                "c2": [("b", "c1"), ("d", "t0")],
                "t0": [("s", "t0")],
                "t1": [("s", "t1")],
            },
            decisions={"t0": {0: 0, 1: 0}, "t1": {0: 1, 1: 1}},
        )
        an = ValenceAnalyzer(sys)
        assert an.valence(sys.state("c1")).values == frozenset({0, 1})
        assert an.valence(sys.state("c2")).values == frozenset({0, 1})
        assert an.valence(sys.state("c1")).diverges

    def test_self_loop_diverges(self):
        sys = ToySystem(edges={"x": [("s", "x")]})
        an = ValenceAnalyzer(sys)
        r = an.valence(sys.state("x"))
        assert r.diverges and r.values == frozenset()

    def test_decided_self_loop_terminal(self):
        sys = ToySystem(
            edges={"x": [("s", "x")]},
            decisions={"x": {0: 1, 1: 1}},
        )
        an = ValenceAnalyzer(sys)
        r = an.valence(sys.state("x"))
        assert not r.diverges and r.values == frozenset({1})


class TestFailedProcesses:
    def test_failed_process_decision_ignored(self):
        sys = ToySystem(
            edges={"x": [("s", "x")]},
            decisions={"x": {0: 0, 1: 1}},
            failed={"x": frozenset({1})},
        )
        an = ValenceAnalyzer(sys)
        r = an.valence(sys.state("x"))
        # Process 1 is failed: its decision does not make the state
        # 1-valent; process 0's decision suffices for termination.
        assert r.values == frozenset({0})
        assert not r.diverges

    def test_partial_decision_with_failure_is_terminal(self):
        sys = ToySystem(
            edges={"x": [("s", "x")]},
            decisions={"x": {0: 0}},
            failed={"x": frozenset({1})},
        )
        an = ValenceAnalyzer(sys)
        assert an.is_terminal(sys.state("x"))


class TestLimits:
    def test_exploration_limit_strict(self):
        # A long chain exceeding a tiny budget: strict mode raises.
        edges = {f"s{i}": [("n", f"s{i+1}")] for i in range(100)}
        edges["s100"] = [("s", "s100")]
        sys = ToySystem(edges=edges, decisions={"s100": {0: 0, 1: 0}})
        an = ValenceAnalyzer(sys, max_states=10, strict=True)
        with pytest.raises(ExplorationLimitExceeded):
            an.valence(sys.state("s0"))

    def test_exploration_limit_graceful(self):
        # By default the same exhaustion degrades to an incomplete
        # lower-bound result that is not memoized.
        edges = {f"s{i}": [("n", f"s{i+1}")] for i in range(100)}
        edges["s100"] = [("s", "s100")]
        sys = ToySystem(edges=edges, decisions={"s100": {0: 0, 1: 0}})
        an = ValenceAnalyzer(sys, max_states=10)
        result = an.valence(sys.state("s0"))
        assert not result.complete
        assert not result.univalent  # incompleteness blocks univalence
        assert result.values == frozenset()  # decision not yet reached

    def test_incomplete_bivalence_is_sound(self, toy_diamond):
        # Values already observed certify bivalence even when the budget
        # trips (lower-bound semantics).
        full = ValenceAnalyzer(toy_diamond).valence(toy_diamond.state("x"))
        assert full.complete and full.bivalent

    def test_cross_query_reuse(self, toy_diamond):
        an = ValenceAnalyzer(toy_diamond)
        r1 = an.valence(toy_diamond.state("a"))
        r2 = an.valence(toy_diamond.state("x"))
        assert r1.values < r2.values


class TestEdgeBudget:
    """The edge budget must trip *inside* one state's expansion.

    Regression: ``_explore`` discarded the ``charge_edge`` return, so a
    single high-degree state (degree far below the 256-op slow-check
    period) could generate arbitrarily many successors past an exhausted
    edge budget — on a small system the trip never fired at all.
    """

    def _wide_system(self, fanout: int = 40) -> ToySystem:
        edges = {"x": [(f"a{i}", f"c{i}") for i in range(fanout)]}
        decisions = {}
        for i in range(fanout):
            edges[f"c{i}"] = [("s", f"c{i}")]
            decisions[f"c{i}"] = {0: 0, 1: 0}
        return ToySystem(edges=edges, decisions=decisions)

    def test_strict_raises_within_one_expansion(self):
        sys = self._wide_system()
        an = ValenceAnalyzer(
            sys, max_states=Budget(max_edges=10), strict=True
        )
        with pytest.raises(ExplorationLimitExceeded, match="edges"):
            an.valence(sys.state("x"))

    def test_graceful_incomplete_within_one_expansion(self):
        sys = self._wide_system()
        an = ValenceAnalyzer(sys, max_states=Budget(max_edges=10))
        result = an.valence(sys.state("x"))
        assert not result.complete

    def test_roomy_edge_budget_unaffected(self):
        sys = self._wide_system()
        an = ValenceAnalyzer(
            sys, max_states=Budget(max_edges=10_000), strict=True
        )
        result = an.valence(sys.state("x"))
        assert result.complete and result.values == frozenset({0})
